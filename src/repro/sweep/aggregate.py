"""Merge per-run results into one aggregate ``repro-bench/1`` emission.

The aggregate is the sweep's whole product: per scenario, the
distribution of every core metric across the seed axis (mean with a
bootstrap 95% confidence interval / p95 / min / max), with per-seed
trace digests recorded so

* a reader can tell exactly which runs produced a row, and
* same-seed divergence is *detected*: a deterministic simulator must
  produce one digest per ``(scenario, seed)``, so replicated cells (or
  a buggy worker) disagreeing on a digest fail the sweep loudly
  (:class:`SweepDivergenceError`) instead of averaging garbage.

Everything here is deterministic given the grid: records are already in
grid order (see :mod:`repro.sweep.runner`), scenario rows follow the
grid's scenario order, metric rows a fixed canonical order, and the
payload is emitted with the same stable formatting the bench harness
uses — so the same grid produces a byte-identical JSON at any worker
count, which CI pins.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
from typing import Any, Dict, List, Sequence, Tuple

from .grid import SweepGrid

__all__ = [
    "SweepError",
    "SweepDivergenceError",
    "aggregate_payload",
    "collect_failures",
    "write_json",
]

SCHEMA_VERSION = "repro-bench/1"

#: Core per-run metrics aggregated across seeds, in row order.
CORE_METRICS = (
    "ring_up_ns",
    "span_ns",
    "tour_ns",
    "offered",
    "delivered",
    "bytes_delivered",
    "ring_drops",
    "faults_fired",
    "trace_records",
)


class SweepError(RuntimeError):
    """A sweep could not produce a trustworthy aggregate."""


class SweepDivergenceError(SweepError):
    """Same (scenario, seed) produced different trace digests."""


def _numbers_from(result: Dict[str, Any]) -> Dict[str, float]:
    """The aggregatable scalars of one ``ScenarioResult.to_dict()``."""
    out: Dict[str, float] = {
        "ring_up_ns": result["ring_up_ns"],
        "span_ns": result["end_ns"] - result["ring_up_ns"],
        "tour_ns": result["tour_ns"],
    }
    counters = result.get("counters", {})
    for key in ("offered", "delivered", "ring_drops", "faults_fired",
                "trace_records"):
        out[key] = counters.get(key, 0)
    # Pool the per-stream delivery latency summaries: the seed axis
    # moves arrival processes, so these are the distributions a sweep
    # exists to measure.
    samples = 0
    weighted_mean = 0.0
    worst = 0.0
    for stream in result.get("streams", []):
        latency = stream.get("latency")
        if not latency or not latency.get("count"):
            continue
        samples += int(latency["count"])
        weighted_mean += latency["mean"] * latency["count"]
        worst = max(worst, latency["max"])
    if samples:
        out["latency_mean_ns"] = weighted_mean / samples
        out["latency_max_ns"] = worst
    out["bytes_delivered"] = sum(
        s.get("bytes_delivered", 0) for s in result.get("streams", [])
    )
    for key, value in result.get("convergence", {}).items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"convergence.{key}"] = value
    return out


def _p95(sorted_values: Sequence[float]) -> float:
    """Nearest-rank 95th percentile (deterministic, no interpolation)."""
    n = len(sorted_values)
    rank = max(1, -(-95 * n // 100))  # ceil(0.95 * n) in integer math
    return sorted_values[rank - 1]


#: Bootstrap resamples behind every CI95 column.  Fixed (not
#: configurable) so a given grid always emits byte-identical intervals.
_BOOTSTRAP_RESAMPLES = 1000


def _bootstrap_ci95(
    scenario: str, metric: str, values: Sequence[float]
) -> Tuple[float, float]:
    """Percentile-bootstrap 95% CI of the mean over the seed axis.

    The resampler is seeded from the (scenario, metric) pair — not the
    process, the worker count, or the wall clock — so the interval is a
    pure function of the per-seed values and re-emitting a sweep
    reproduces S1.json byte for byte.  ``random.Random(str)`` hashes
    its seed with a deterministic algorithm (not ``PYTHONHASHSEED``),
    so the emission is stable across interpreter launches too.
    """
    n = len(values)
    if n == 1:
        return values[0], values[0]
    rng = random.Random(f"ci95:{scenario}:{metric}")
    means = sorted(
        sum(values[rng.randrange(n)] for _ in range(n)) / n
        for _ in range(_BOOTSTRAP_RESAMPLES)
    )
    lo_rank = max(1, -(-25 * _BOOTSTRAP_RESAMPLES // 1000))   # ceil 2.5%
    hi_rank = max(1, -(-975 * _BOOTSTRAP_RESAMPLES // 1000))  # ceil 97.5%
    return means[lo_rank - 1], means[hi_rank - 1]


def _stat_row(scenario: str, metric: str,
              values: Sequence[float]) -> List[Any]:
    ordered = sorted(values)
    mean = sum(ordered) / len(ordered)
    ci_lo, ci_hi = _bootstrap_ci95(scenario, metric, ordered)
    return [
        scenario,
        metric,
        len(ordered),
        round(mean, 3),
        round(ci_lo, 3),
        round(ci_hi, 3),
        round(_p95(ordered), 3),
        round(ordered[0], 3),
        round(ordered[-1], 3),
    ]


def _merge_cells(
    records: Sequence[Dict[str, Any]],
) -> "Dict[Tuple[str, int], Dict[str, Any]]":
    """Group replicate records per (scenario, seed); verify digests.

    Returns one representative record per cell, in first-appearance
    (grid) order.  Raises :class:`SweepError` for worker errors and
    :class:`SweepDivergenceError` when replicates of a cell disagree on
    the trace digest.
    """
    errors = [r for r in records if "error" in r]
    if errors:
        first = errors[0]
        raise SweepError(
            f"{len(errors)} run(s) raised; first: "
            f"{first['name']} seed {first['seed']}:\n{first['error']}"
        )
    cells: Dict[Tuple[str, int], Dict[str, Any]] = {}
    for record in records:
        key = (record["name"], record["seed"])
        digest = record["result"]["trace_digest"]
        if key not in cells:
            cells[key] = record
            continue
        seen = cells[key]["result"]["trace_digest"]
        if digest != seen:
            raise SweepDivergenceError(
                f"scenario {key[0]!r} seed {key[1]}: replicate "
                f"{record['replicate']} produced digest {digest}, "
                f"replicate {cells[key]['replicate']} produced {seen} — "
                "same-seed runs must be identical"
            )
    return cells


def collect_failures(
    records: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Runs whose invariants failed, in grid order."""
    return [
        r for r in records
        if "result" in r and not r["result"].get("ok", False)
    ]


def aggregate_payload(
    grid: SweepGrid,
    records: Sequence[Dict[str, Any]],
    exp: str,
    title: str = "",
    notes: str = "",
) -> Dict[str, Any]:
    """Fold grid records into one ``repro-bench/1`` payload."""
    cells = _merge_cells(records)
    rows: List[List[Any]] = []
    scenarios: List[Dict[str, Any]] = []
    failed = 0
    for spec in grid.specs:
        per_seed = []
        digests: Dict[str, str] = {}
        ok = True
        for seed in grid.seeds:
            record = cells.get((spec.name, seed))
            if record is None:
                raise SweepError(
                    f"no result for scenario {spec.name!r} seed {seed}"
                )
            result = record["result"]
            per_seed.append(_numbers_from(result))
            digests[str(seed)] = result["trace_digest"]
            if not result.get("ok", False):
                ok = False
                failed += 1
        # Convergence keys are aggregated only when every seed reported
        # them (a mean over a partial column would be a lie).
        extra = sorted(
            set.intersection(*(set(n) for n in per_seed)) - set(CORE_METRICS)
        )
        for metric in (*CORE_METRICS, *extra):
            rows.append(_stat_row(
                spec.name, metric, [n[metric] for n in per_seed]
            ))
        scenarios.append({
            "name": spec.name,
            "ok": ok,
            "seeds": list(grid.seeds),
            "digests": digests,
            "spec": spec.to_dict(),
        })
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "exp": exp,
        "title": title or (
            "Seed sweep: " + ", ".join(grid.scenario_names)
        ),
        "params": {
            "scenarios": grid.scenario_names,
            "seeds": list(grid.seeds),
            "replicates": grid.replicates,
        },
        "columns": ["scenario", "metric", "seeds", "mean",
                    "mean_ci95_lo", "mean_ci95_hi", "p95", "min", "max"],
        "rows": rows,
        "metrics": {
            "runs": len(cells),
            "scenarios": len(grid.specs),
            "failed_runs": failed,
        },
        "scenarios": scenarios,
    }
    if notes:
        payload["notes"] = notes
    return payload


def write_json(payload: Dict[str, Any], path: pathlib.Path) -> pathlib.Path:
    """Atomically persist ``payload`` as pretty-printed JSON.

    Same torn-write discipline as ``benchmarks/harness.py``: the
    document lands via ``os.replace`` of a sibling temp file, so a
    concurrent reader (or a crash mid-write) can never observe a
    truncated emission.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
