"""F3 (slide 8): simultaneous all-to-all broadcast never drops a packet.

AmpNet's register-insertion ring with local-view flow control completes
the storm with zero drops at every scale; the conventional switched-LAN
baseline tail-drops under the same convergent burst (its TCP layer then
pays retransmissions to recover).

The AmpNet side is described declaratively — one broadcast-storm
``ScenarioSpec`` per size — and the run is judged by the scenario
engine's own invariants (no drops, all delivered).  The size grid runs
through :mod:`repro.sweep`'s ``run_grid`` (a ``SweepGrid`` built from
the exact specs below rather than ``grid_from_names``: the committed
emission pins the ``f3_storm_{n}`` spec metadata byte for byte, and
library-name expansion would rename the cells).  Sizes can be
overridden for smoke runs: ``F3_SIZES=4 pytest benchmarks/bench_f3...``.
"""

from repro.analysis import render_table
from repro.baselines import EthConfig, EthernetFabric
from repro.scenarios import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.sim import Simulator
from repro.sweep import SweepGrid, run_grid, workers_from_env

import harness

DEFAULT_NODE_COUNTS = (4, 8, 16)
CELLS_PER_NODE = 16


def sizes_under_test():
    return harness.sizes_from_env("F3_SIZES", DEFAULT_NODE_COUNTS)


def storm_spec(n_nodes: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"f3_storm_{n_nodes}",
        description="slide-8 all-to-all broadcast storm",
        topology=TopologySpec(n_nodes=n_nodes, n_switches=2),
        workloads=(WorkloadSpec("broadcast", count=CELLS_PER_NODE, channel=3),),
        horizon_tours=250,
        grace_tours=3000,
        invariants=("no_drops", "all_delivered"),
    )


def run_baseline(n_nodes: int):
    sim = Simulator()
    fabric = EthernetFabric(sim, n_nodes, EthConfig(egress_capacity=8))
    # Broadcast storm as N-1 unicasts per cell (switched LANs replicate
    # broadcast at the switch; the convergence pattern is identical).
    for src in range(n_nodes):
        for _ in range(CELLS_PER_NODE):
            for dst in range(n_nodes):
                if dst != src:
                    fabric.nodes[src].send(dst, 64)
    sim.run()
    return fabric


def storm_grid() -> SweepGrid:
    # seeds=(0,) pins the specs' own default seed: cells are the exact
    # scenarios the emission has always recorded.
    return SweepGrid(
        specs=tuple(storm_spec(n) for n in sizes_under_test()), seeds=(0,)
    )


def run_experiment():
    sizes = sizes_under_test()
    records = run_grid(storm_grid(), workers=workers_from_env())
    rows = []
    specs = [storm_spec(n) for n in sizes]
    # run_grid returns grid order == sizes order at any worker count.
    for n, record in zip(sizes, records):
        assert "error" not in record, record.get("error")
        result = record["result"]
        fabric = run_baseline(n)
        expected = CELLS_PER_NODE * n * (n - 1)
        rows.append(
            (
                n,
                expected,
                result["counters"]["delivered"],
                result["counters"]["ring_drops"],
                fabric.counters["offered"],
                fabric.counters["drops"],
                result["ok"],
            )
        )
    return rows, specs


def test_f3_alltoall_broadcast_no_drops(benchmark, publish, publish_json):
    rows, specs = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    for n, expected, delivered, amp_drops, _offered, eth_drops, scenario_ok in rows:
        # The paper's guarantee, verbatim: zero drops, storm completes.
        assert amp_drops == 0, f"AmpNet dropped at n={n}"
        assert delivered == expected, f"storm incomplete at n={n}"
        assert scenario_ok, f"scenario invariants failed at n={n}"
        # The baseline drops under the same convergent load.
        assert eth_drops > 0, f"baseline did not drop at n={n}"

    columns = [
        "Nodes",
        "AmpNet expected",
        "AmpNet delivered",
        "AmpNet drops",
        "Ethernet frames",
        "Ethernet drops",
    ]
    table_rows = [row[:6] for row in rows]
    publish(
        "F3",
        render_table(
            "F3 (slide 8): all-to-all broadcast storm — drops",
            columns,
            table_rows,
        )
        + "\nShape: AmpNet completes every storm with zero drops; the"
        "\ndrop-capable baseline tail-drops at every scale.",
    )
    publish_json(
        harness.bench_payload(
            exp="F3",
            title="All-to-all broadcast storm: drops vs the switched baseline",
            params={"cells_per_node": CELLS_PER_NODE,
                    "sizes": list(sizes_under_test())},
            columns=columns,
            rows=table_rows,
            metrics={
                "amp_total_drops": sum(r[3] for r in rows),
                "eth_total_drops": sum(r[5] for r in rows),
            },
            scenarios=[spec.to_dict() for spec in specs],
            notes="AmpNet side built and judged by the scenario engine "
                  "(no_drops + all_delivered invariants).",
        )
    )
