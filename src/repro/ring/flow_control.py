"""Local-view insertion flow control (paper slide 8).

    "Each node monitors its local view of the network and can increase
     or decrease its contribution to the total flow accordingly."

Two cooperating mechanisms give AmpNet its *guaranteed no-drop* property:

1. **Insertion window** — a node may have at most ``W`` of its own frames
   circulating, where ``W = transit_capacity // ring_size``.  Because
   every frame is source-stripped, the total number of frames on the ring
   is bounded by ``ring_size * W <= transit_capacity``, so no transit
   buffer can ever overflow: the no-drop guarantee is structural, not
   statistical.  (Ablation A2 disables this and watches drops appear.)

2. **Adaptive pacing** — the node watches its *own* transit buffer depth
   (its local view of ring load) and grows the gap between insertions
   multiplicatively when the buffer backs up, shrinking it additively as
   the ring drains.  This is a fairness/latency optimisation on top of
   the hard window; it keeps one chatty node from monopolising ring slots
   during an all-to-all broadcast storm.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowControlConfig", "InsertionController"]


@dataclass(frozen=True)
class FlowControlConfig:
    """Tunables for the insertion controller."""

    #: Transit buffer capacity in frames (hardware SRAM per port).
    transit_capacity: int = 64
    #: Initial/minimum pacing gap between insertions (ns).
    min_gap_ns: int = 0
    #: Ceiling for the pacing gap (ns).  Roughly a hundred cell times:
    #: enough to yield the ring to transit traffic, small enough that a
    #: backed-off node still drains its queue promptly once load clears
    #: (the hard no-drop guarantee is the window, not the pacing).
    max_gap_ns: int = 32_000
    #: Additive decrease step when the ring looks idle (ns).
    relax_step_ns: int = 800
    #: Transit depth at which the node backs off.  Transit priority keeps
    #: the buffer shallow even under storms, so the threshold is low: two
    #: queued frames already means upstream is outpacing this node.
    hi_watermark: int = 2
    #: Disable window and pacing (ablation A2 / baseline behaviour).
    enabled: bool = True
    #: Serve transit traffic before local insertions.  This is the other
    #: half of the no-drop guarantee; the A2 ablation disables it to model
    #: a greedy NIC that prefers its own traffic.
    transit_priority: bool = True
    #: Force a fixed window regardless of ring size (tests/ablations).
    window_override: int | None = None

    def __post_init__(self) -> None:
        if self.transit_capacity < 1:
            raise ValueError("transit capacity must be at least one frame")
        if self.min_gap_ns < 0 or self.max_gap_ns < self.min_gap_ns:
            raise ValueError("gap bounds inconsistent")
        if self.hi_watermark < 1:
            raise ValueError("hi_watermark must be >= 1")


class InsertionController:
    """Per-node insertion decision state."""

    def __init__(self, config: FlowControlConfig):
        self.config = config
        self.window = 1
        self.gap_ns = config.min_gap_ns
        self.outstanding = 0
        self.next_insert_at = 0
        self.backoffs = 0
        self.relaxes = 0

    # ---------------------------------------------------------- lifecycle
    def ring_installed(self, ring_size: int) -> None:
        """Recompute the window for a new roster."""
        if ring_size < 1:
            raise ValueError("ring size must be positive")
        cfg = self.config
        if cfg.window_override is not None:
            self.window = cfg.window_override
        else:
            # Reserve one slot per member for priority/kernel cells (which
            # bypass the window), keeping ring_size * (window + 1) within
            # the transit capacity.
            self.window = max(1, cfg.transit_capacity // ring_size - 1)
        self.gap_ns = cfg.min_gap_ns

    # ----------------------------------------------------------- decisions
    def may_insert(self, now: int) -> bool:
        """Is an insertion allowed right now?"""
        if not self.config.enabled:
            return True
        return self.outstanding < self.window and now >= self.next_insert_at

    def earliest_insert(self) -> int:
        """Time before which pacing forbids insertion (window aside)."""
        return self.next_insert_at

    def window_full(self) -> bool:
        return self.config.enabled and self.outstanding >= self.window

    # -------------------------------------------------------------- events
    def inserted(self, now: int) -> None:
        self.outstanding += 1
        self.next_insert_at = now + self.gap_ns

    def tour_completed(self) -> None:
        if self.outstanding > 0:
            self.outstanding -= 1

    def tour_lost(self) -> None:
        if self.outstanding > 0:
            self.outstanding -= 1

    def observe_transit_depth(self, depth: int) -> None:
        """Feed the local view: current transit buffer occupancy."""
        if not self.config.enabled:
            return
        cfg = self.config
        if depth >= cfg.hi_watermark:
            # Multiplicative backoff, seeded by one relax step.
            self.gap_ns = min(max(self.gap_ns * 2, cfg.relax_step_ns), cfg.max_gap_ns)
            self.backoffs += 1
        elif depth == 0 and self.gap_ns > cfg.min_gap_ns:
            self.gap_ns = max(self.gap_ns - cfg.relax_step_ns, cfg.min_gap_ns)
            self.relaxes += 1
