"""Named, seeded random streams.

Every stochastic component of the AmpNet model draws from its *own* named
stream derived from the simulator's master seed.  Adding a new component
(or reordering calls inside one) therefore never shifts the random sequence
seen by any other component — a property the paper-shape benchmarks depend
on when comparing AmpNet against baselines under *identical* workloads.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["SeededStreams", "derive_seed"]


def derive_seed(master: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name.

    Uses BLAKE2b so the mapping is stable across Python versions and
    platforms (``hash()`` is salted per-process and unusable here).
    """
    digest = hashlib.blake2b(
        name.encode("utf-8"),
        digest_size=8,
        key=master.to_bytes(16, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")


class SeededStreams:
    """Factory and registry of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            raise ValueError("master seed must be non-negative")
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "SeededStreams":
        """A child registry whose master seed is derived from ``name``."""
        return SeededStreams(derive_seed(self.master_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SeededStreams master={self.master_seed} "
            f"streams={sorted(self._streams)}>"
        )
