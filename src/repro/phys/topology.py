"""Redundant physical topologies (slides 14-15).

AmpNet's availability comes from wiring every node to *every* switch of a
segment: a dual-redundant segment has two switches, the quad-redundant
segment of slide 14 has four.  Any single switch that survives can carry a
full logical ring; the rostering algorithm picks the best surviving
configuration (possibly threading through several switches when no single
switch reaches every node).

The builders here create the ports, switches and fibres, and expose fault
handles plus a *ground-truth* connectivity view that the tests use to
check what rostering discovers against what is physically true.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sim import Simulator, Tracer
from .constants import (
    NODE_TRANSIT_NS,
    SWITCH_LATENCY_NS,
    propagation_ns,
    serialization_ns,
)
from ..micropacket import frame_wire_bits, FIXED_WIRE_BYTES
from .frame import IDLE_GAP_SYMBOLS
from .link import Fiber
from .port import Port
from .switch import Switch

__all__ = [
    "PhysicalTopology",
    "build_switched",
    "build_dual_redundant",
    "build_quad_redundant",
    "ring_tour_estimate_ns",
]


@dataclass
class PhysicalTopology:
    """A set of nodes fully wired to a set of switches.

    ``node_ports[i][k]`` is node *i*'s port on switch *k*; the matching
    fibre is ``fibers[(i, k)]``.  Node objects themselves live a layer up
    (:mod:`repro.node`); the topology only knows attachment points.
    """

    sim: Simulator
    n_nodes: int
    n_switches: int
    fiber_m: float
    switches: List[Switch] = field(default_factory=list)
    node_ports: Dict[int, List[Port]] = field(default_factory=dict)
    fibers: Dict[Tuple[int, int], Fiber] = field(default_factory=dict)
    #: per-node "the node is dark" bookkeeping for node power faults
    _dark_nodes: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------- queries
    @property
    def node_ids(self) -> List[int]:
        return list(range(self.n_nodes))

    def ports_of(self, node_id: int) -> List[Port]:
        return self.node_ports[node_id]

    def fiber(self, node_id: int, switch_id: int) -> Fiber:
        return self.fibers[(node_id, switch_id)]

    def live_attachment(self) -> Dict[int, Set[int]]:
        """Ground truth: switch id -> set of node ids with a live fibre.

        A switch that failed contributes an empty set.  Used by tests and
        the F6 survivability bench as the oracle against which rostering's
        discovered roster is checked.
        """
        out: Dict[int, Set[int]] = {}
        for sw in self.switches:
            members: Set[int] = set()
            if not sw.failed:
                for node in self.node_ids:
                    if node in self._dark_nodes:
                        continue
                    if self.fibers[(node, sw.switch_id)].is_up:
                        members.add(node)
            out[sw.switch_id] = members
        return out

    # -------------------------------------------------------------- faults
    def cut_link(self, node_id: int, switch_id: int) -> None:
        self.fibers[(node_id, switch_id)].cut()

    def restore_link(self, node_id: int, switch_id: int) -> None:
        self.fibers[(node_id, switch_id)].restore()

    def fail_switch(self, switch_id: int) -> None:
        self.switches[switch_id].fail()

    def repair_switch(self, switch_id: int) -> None:
        self.switches[switch_id].repair()

    def node_dark(self, node_id: int) -> None:
        """Node powered off: all its transceivers stop lasing."""
        if node_id in self._dark_nodes:
            return
        self._dark_nodes.add(node_id)
        for k in range(self.n_switches):
            self.fibers[(node_id, k)].endpoint_dark()

    def node_lit(self, node_id: int) -> None:
        if node_id not in self._dark_nodes:
            return
        self._dark_nodes.discard(node_id)
        for k in range(self.n_switches):
            self.fibers[(node_id, k)].endpoint_lit()


def build_switched(
    sim: Simulator,
    n_nodes: int,
    n_switches: int,
    fiber_m: float = 50.0,
    tracer: Optional[Tracer] = None,
    switch_latency_ns: int = SWITCH_LATENCY_NS,
) -> PhysicalTopology:
    """Wire ``n_nodes`` nodes to ``n_switches`` switches, full bipartite.

    Node *i*'s port *k* attaches to port *i* of switch *k* over a fibre of
    ``fiber_m`` metres — the wiring drawn on slide 14.
    """
    if n_nodes < 2:
        raise ValueError("a segment needs at least two nodes")
    if not 1 <= n_switches <= 4:
        raise ValueError("AmpNet NICs have one to four ports (slide 15)")
    topo = PhysicalTopology(sim, n_nodes, n_switches, fiber_m)
    topo.switches = [
        Switch(sim, k, n_ports=n_nodes, latency_ns=switch_latency_ns, tracer=tracer)
        for k in range(n_switches)
    ]
    for i in range(n_nodes):
        ports = [Port(sim, f"node-{i}.p{k}") for k in range(n_switches)]
        topo.node_ports[i] = ports
        for k, sw in enumerate(topo.switches):
            fiber = Fiber(sim, ports[k], sw.ports[i], fiber_m)
            topo.fibers[(i, k)] = fiber
            sw.attach_fiber(fiber)
    return topo


def build_dual_redundant(
    sim: Simulator, n_nodes: int, fiber_m: float = 50.0,
    tracer: Optional[Tracer] = None,
) -> PhysicalTopology:
    """The dual-redundant segment of slide 15 (two switches)."""
    return build_switched(sim, n_nodes, 2, fiber_m, tracer)


def build_quad_redundant(
    sim: Simulator, n_nodes: int = 6, fiber_m: float = 50.0,
    tracer: Optional[Tracer] = None,
) -> PhysicalTopology:
    """The quad-redundant switched network of slide 14 (four switches,
    six nodes by default, exactly as drawn)."""
    return build_switched(sim, n_nodes, 4, fiber_m, tracer)


def ring_tour_estimate_ns(
    n_nodes: int,
    fiber_m: float,
    switch_latency_ns: int = SWITCH_LATENCY_NS,
    payload_wire_bytes: int = FIXED_WIRE_BYTES,
) -> int:
    """Upper-bound estimate of one ring-tour time for a fixed cell.

    Each of the ``n_nodes`` hops costs: node transit logic + cell
    serialization + fibre to the switch + switch latency + fibre onward.
    The rostering protocol uses this as its report-collection window, so
    rostering completes in roughly *two* of these tours — the slide-16
    claim that bench F7 measures.
    """
    per_hop = (
        NODE_TRANSIT_NS
        + serialization_ns(frame_wire_bits(payload_wire_bytes) + 10 * IDLE_GAP_SYMBOLS)
        + 2 * propagation_ns(fiber_m)
        + switch_latency_ns
    )
    return n_nodes * per_hop
