"""AmpDC registered host memory regions (slides 11-12).

Hosts register memory regions with the NIC; remote nodes then DMA
directly into them ("fine grain multiplexed DMA channels" between "AmpDC
registered memory regions in host computer").  Slide 10's coherence rule
is modelled too: host-visible region bytes are written through on
arrival — there is no host-side cache that could go stale.

RDMA writes ride the reliable messenger on the RDMA channel, so they
inherit at-least-once delivery with idempotent application: the paper's
no-data-loss property extends to host memory.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..sim import Counter
from ..transport import Channel

if TYPE_CHECKING:  # pragma: no cover
    from ..node import AmpNode
    from ..transport import MessageHandle, Messenger

__all__ = ["AmpDC", "HostRegion", "RegionError"]


class RegionError(Exception):
    """Unknown region or out-of-bounds access."""


class HostRegion:
    """One registered region of host memory."""

    def __init__(self, name: str, size: int):
        if size <= 0:
            raise RegionError("region size must be positive")
        self.name = name
        self.data = bytearray(size)
        self.writes = 0
        #: host-side listeners poked after each remote write
        self.on_write: List[Callable[[int, int], None]] = []

    def __len__(self) -> int:
        return len(self.data)

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        end = len(self.data) if length is None else offset + length
        if not 0 <= offset <= end <= len(self.data):
            raise RegionError(f"read [{offset}:{end}] outside region {self.name}")
        return bytes(self.data[offset:end])

    def _apply(self, offset: int, payload: bytes) -> None:
        if offset + len(payload) > len(self.data):
            raise RegionError(
                f"write at {offset}+{len(payload)} overflows region {self.name}"
            )
        self.data[offset : offset + len(payload)] = payload
        self.writes += 1
        for fn in self.on_write:
            fn(offset, len(payload))


class AmpDC:
    """Per-node registered-region service."""

    def __init__(self, node: "AmpNode", messenger: "Messenger"):
        self.node = node
        self.messenger = messenger
        self.counters = Counter()
        self._regions: Dict[str, HostRegion] = {}
        messenger.on_message(Channel.RDMA, self._on_rdma)

    # -------------------------------------------------------------- regions
    def register_region(self, name: str, size: int) -> HostRegion:
        if name in self._regions:
            raise RegionError(f"region {name!r} already registered")
        if len(name.encode("utf-8")) > 255:
            raise RegionError("region name too long")
        region = HostRegion(name, size)
        self._regions[name] = region
        self.counters.incr("regions_registered")
        return region

    def region(self, name: str) -> HostRegion:
        region = self._regions.get(name)
        if region is None:
            raise RegionError(f"region {name!r} not registered")
        return region

    # ----------------------------------------------------------------- rdma
    def rdma_write(
        self, dst: int, region_name: str, offset: int, payload: bytes
    ) -> "MessageHandle":
        """Write ``payload`` into ``region_name`` at ``offset`` on ``dst``.

        The returned handle's ``delivered`` event fires when the write is
        confirmed on the ring.
        """
        if offset < 0:
            raise RegionError("negative offset")
        name_b = region_name.encode("utf-8")
        header = bytes([len(name_b)]) + name_b + offset.to_bytes(4, "little")
        self.counters.incr("rdma_writes")
        return self.messenger.send(dst, header + payload, Channel.RDMA)

    def _on_rdma(self, src: int, payload: bytes, channel: int) -> None:
        name_len = payload[0]
        name = payload[1 : 1 + name_len].decode("utf-8")
        offset = int.from_bytes(payload[1 + name_len : 5 + name_len], "little")
        data = payload[5 + name_len :]
        region = self._regions.get(name)
        if region is None:
            self.counters.incr("rdma_unknown_region")
            return
        region._apply(offset, data)
        self.counters.incr("rdma_applied")
