"""Serial links and duplex fibres.

A :class:`SerialLink` is one direction of light: it serializes frames at
the FC-0 line rate (transmitter busy for the frame's wire time, so link
utilisation emerges naturally) and delivers them after the propagation
delay of the fibre run.  A :class:`Fiber` bundles the two directions and
is the unit of fault injection — cutting a fibre kills both directions,
loses whatever was in flight, and drops carrier at both ends after the
hardware debounce time.

The transmitter is an event-driven chain rather than a resumed process:
each frame costs one dequeue hop, one serialization-end entry and one
arrival entry — all slim kernel callbacks, no store round-trip and no
generator machinery.  The chain deliberately mirrors the event-step
structure of the process it replaced (dequeue one step after enqueue,
the next frame's dequeue issued at the previous serialization end), so
same-instant arrivals across links interleave in exactly the order they
always did — the golden-trace digests pin this.  Loss semantics are
unchanged: a frame is checked against ``up`` when its serialization
starts and ends, and an in-flight arrival whose captured epoch is stale
(every cut bumps the epoch) is light that died mid-flight.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Deque, List, Optional

from ..sim import Callback, Simulator
from .constants import CARRIER_DETECT_NS, propagation_ns
from .frame import Frame
from .port import Port

__all__ = ["SerialLink", "Fiber"]


class SerialLink:
    """Unidirectional serial run from ``src`` to ``dst``."""

    def __init__(
        self,
        sim: Simulator,
        src: Port,
        dst: Port,
        length_m: float,
        name: str = "",
    ):
        if length_m < 0:
            raise ValueError("fibre length must be non-negative")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.length_m = length_m
        self.name = name or f"{src.name}->{dst.name}"
        self.prop_ns = propagation_ns(length_m)
        self.up = True
        #: epoch increments on every cut; in-flight deliveries from an
        #: older epoch are discarded (the light went dark mid-flight).
        self._epoch = 0
        self._queue: Deque[Frame] = deque()
        #: True while the dequeue→serialize chain is running.
        self._engaged = False
        #: reusable dequeue entry — stateless, so the same instance can
        #: sit on the schedule heap any number of times.
        self._dequeue_cb = Callback(self._dequeue, ())
        self.frames_delivered = 0
        self.frames_lost = 0

    # The three schedule pushes below are hand-inlined (heappush on the
    # kernel's queue instead of sim.call_in): every frame on every fibre
    # passes through here, and at 256-node scale the call_in frames alone
    # were a measurable slice of the run.

    def transmit(self, frame: Frame) -> None:
        """Queue a frame; serialization is strictly in order at line rate."""
        self._queue.append(frame)
        if not self._engaged:
            self._engaged = True
            # Dequeue fires one event-step later, like the store get the
            # old transmitter process woke up on.
            sim = self.sim
            heappush(sim._queue, (sim._now, sim._seq, self._dequeue_cb))
            sim._seq += 1

    def _dequeue(self) -> None:
        frame = self._queue.popleft()
        if not self.up:
            self.frames_lost += 1
            self._chain()
            return
        sim = self.sim
        heappush(
            sim._queue,
            (sim._now + frame.ser_ns, sim._seq, Callback(self._serialized, (frame,))),
        )
        sim._seq += 1

    def _serialized(self, frame: Frame) -> None:
        if not self.up:
            self.frames_lost += 1
        else:
            sim = self.sim
            heappush(
                sim._queue,
                (
                    sim._now + self.prop_ns,
                    sim._seq,
                    Callback(self._arrive, (frame, self._epoch)),
                ),
            )
            sim._seq += 1
        self._chain()

    def _chain(self) -> None:
        if self._queue:
            sim = self.sim
            heappush(sim._queue, (sim._now, sim._seq, self._dequeue_cb))
            sim._seq += 1
        else:
            self._engaged = False

    def _arrive(self, frame: Frame, epoch: int) -> None:
        if not self.up or epoch != self._epoch:
            self.frames_lost += 1
            return
        self.frames_delivered += 1
        self.dst.deliver(frame)

    # ------------------------------------------------------------- faults
    def go_down(self) -> None:
        if not self.up:
            return
        self.up = False
        self._epoch += 1
        # Receiver sees loss of light after the debounce time.
        self.sim.call_in(CARRIER_DETECT_NS, self._sync_carrier, False)

    def go_up(self) -> None:
        if self.up:
            return
        self.up = True
        self.sim.call_in(CARRIER_DETECT_NS, self._sync_carrier, True)

    def _sync_carrier(self, up: bool) -> None:
        # Only apply if the state still matches (cut/restore races).
        if up == self.up:
            self.dst.set_carrier(up)


class Fiber:
    """Duplex fibre pair between two ports; the unit of fault injection."""

    def __init__(self, sim: Simulator, a: Port, b: Port, length_m: float):
        self.sim = sim
        self.a = a
        self.b = b
        self.length_m = length_m
        self.ab = SerialLink(sim, a, b, length_m)
        self.ba = SerialLink(sim, b, a, length_m)
        a.tx_link, a.rx_link = self.ab, self.ba
        b.tx_link, b.rx_link = self.ba, self.ab
        #: independent reasons the fibre may be down (cut, endpoint dark)
        self._cut = False
        self._dark_sides = 0
        # Light comes up as soon as both transceivers are on; model
        # bring-up as immediate carrier at t=0 via the debounce path.
        a.set_carrier(True)
        b.set_carrier(True)

    @property
    def is_up(self) -> bool:
        return not self._cut and self._dark_sides == 0

    def cut(self) -> None:
        """Sever the fibre: both directions go dark, in-flight light lost."""
        if self._cut:
            return
        self._cut = True
        self._apply()

    def restore(self) -> None:
        """Mend the fibre (carrier returns after debounce at both ends)."""
        if not self._cut:
            return
        self._cut = False
        self._apply()

    def endpoint_dark(self) -> None:
        """A transceiver stopped lasing (its node/switch died)."""
        self._dark_sides += 1
        self._apply()

    def endpoint_lit(self) -> None:
        if self._dark_sides == 0:
            raise ValueError("endpoint_lit without matching endpoint_dark")
        self._dark_sides -= 1
        self._apply()

    def _apply(self) -> None:
        if self.is_up:
            self.ab.go_up()
            self.ba.go_up()
        else:
            self.ab.go_down()
            self.ba.go_down()
