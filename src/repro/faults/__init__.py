"""Fault injection: scripted schedules and named scenarios."""

from .injector import FaultAction, FaultKind, FaultSchedule, FaultScheduleError
from .scenarios import (
    crash_and_rejoin,
    double_fault,
    flapping_node,
    partition_and_heal,
    primary_crash,
    rolling_switch_failures,
    single_link_cut,
    switch_blackout,
)

__all__ = [
    "FaultAction",
    "FaultKind",
    "FaultSchedule",
    "FaultScheduleError",
    "crash_and_rejoin",
    "flapping_node",
    "partition_and_heal",
    "double_fault",
    "primary_crash",
    "rolling_switch_failures",
    "single_link_cut",
    "switch_blackout",
]
