"""Property tests for the content-popularity workload streams.

The contracts the caching wave leans on:

* a :class:`ZipfStream` under the *same* master seed replays the same
  content-id sequence and the same request instants, packet for packet,
  and *different* seeds draw different content sequences;
* the empirical rank frequency of the Zipf sampler matches the
  configured ``1 / (k + 1) ** alpha`` law within sampling tolerance;
* a :class:`TraceReplayStream` is seed-*invariant*: the offered content
  sequence and the request instants come from the trace alone, exactly
  as recorded, under any master seed.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AmpNetCluster, ClusterConfig
from repro.workloads import (
    TraceReplayStream,
    ZipfStream,
    load_trace,
    zipf_sampler,
    zipf_weights,
)

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_cluster(seed):
    cluster = AmpNetCluster(
        config=ClusterConfig(n_nodes=4, n_switches=2, seed=seed)
    )
    cluster.start()
    cluster.run_until_ring_up()
    return cluster


def drive(seed, build, tours=800):
    """Build one content stream on a fresh cluster; return what it
    offered: the content-id sequence and the request instants relative
    to the stream's start."""
    cluster = make_cluster(seed)
    start = cluster.sim.now
    stream = build(cluster)
    cluster.run(until=cluster.sim.now + tours * cluster.tour_estimate_ns)
    assert stream.stats.offered == stream.count, "stream did not finish"
    stream.close()
    offsets = [t - start for t in stream.tx_times]
    return list(stream.content_ids), offsets


def zipf(cluster):
    return ZipfStream(cluster, 0, 2, interval_ns=4_000, count=40,
                      alpha=0.9, catalog_size=64, name="prop-zipf")


# ------------------------------------------------------------ ZipfStream
@given(seed=st.integers(0, 50))
@SLOW
def test_zipf_same_seed_replays_identical_requests(seed):
    assert drive(seed, zipf) == drive(seed, zipf)


@given(seed=st.integers(0, 50))
@SLOW
def test_zipf_different_seeds_draw_different_content(seed):
    ids_a, times_a = drive(seed, zipf)
    ids_b, times_b = drive(seed + 1000, zipf)
    # Arrivals are deterministic (constant interval); only the content
    # sequence follows the seed.  40 draws over a 64-wide catalog
    # colliding across seeds would need a broken rng.
    assert ids_a != ids_b
    assert times_a == times_b


def test_zipf_draws_stay_inside_the_catalog():
    ids, _ = drive(5, lambda c: ZipfStream(
        c, 0, 2, interval_ns=3_000, count=60, alpha=1.4, catalog_size=8,
        name="prop-zipf-small"))
    assert all(0 <= cid < 8 for cid in ids)


# --------------------------------------------------- the law itself
@given(
    alpha=st.floats(0.0, 2.5),
    catalog=st.integers(1, 200),
)
@settings(max_examples=50, deadline=None)
def test_zipf_weights_are_a_normalised_decreasing_law(alpha, catalog):
    weights = zipf_weights(alpha, catalog)
    assert len(weights) == catalog
    assert abs(sum(weights) - 1.0) < 1e-9
    assert all(a >= b - 1e-12 for a, b in zip(weights, weights[1:]))
    if alpha == 0:
        assert all(abs(w - 1.0 / catalog) < 1e-9 for w in weights)


@given(
    seed=st.integers(0, 10_000),
    alpha=st.floats(0.5, 1.5),
    catalog=st.integers(4, 24),
)
@settings(max_examples=10, deadline=None)
def test_zipf_sampler_matches_rank_frequency_law(seed, alpha, catalog):
    n = 20_000
    draw = zipf_sampler(random.Random(seed), alpha, catalog)
    counts = [0] * catalog
    for _ in range(n):
        counts[draw()] += 1
    for rank, expected in enumerate(zipf_weights(alpha, catalog)):
        sigma = (expected * (1 - expected) / n) ** 0.5
        tolerance = 6 * sigma + 1e-4
        assert abs(counts[rank] / n - expected) <= tolerance, (
            f"rank {rank}: empirical {counts[rank] / n:.4f} vs "
            f"law {expected:.4f} (alpha={alpha}, catalog={catalog})"
        )


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_zipf_sampler_same_seed_replays(seed):
    draw_a = zipf_sampler(random.Random(seed), 1.1, 32)
    draw_b = zipf_sampler(random.Random(seed), 1.1, 32)
    seq = [draw_a() for _ in range(100)]
    assert [draw_b() for _ in range(100)] == seq
    other = zipf_sampler(random.Random(seed + 77), 1.1, 32)
    assert [other() for _ in range(100)] != seq


# ------------------------------------------------------ TraceReplayStream
TRACES = st.lists(
    st.tuples(st.integers(0, 5_000), st.integers(0, 100)),
    min_size=1, max_size=30,
).map(lambda pairs: sorted(pairs, key=lambda r: r[0]))


@given(seed=st.integers(0, 50), trace=TRACES)
@SLOW
def test_trace_replay_is_seed_invariant_and_exact(seed, trace):
    """The trace IS the workload: any master seed offers the recorded
    content sequence at exactly the recorded instants."""

    def build(cluster):
        return TraceReplayStream(cluster, 0, 2, trace=trace,
                                 name="prop-trace")

    ids_a, times_a = drive(seed, build)
    ids_b, times_b = drive(seed + 1000, build)
    assert ids_a == ids_b == [cid for _, cid in trace]
    assert times_a == times_b == [t for t, _ in trace]


def test_trace_file_round_trips_through_load_trace(tmp_path):
    path = tmp_path / "demand.trace"
    path.write_text(
        "# time_ns content_id\n"
        "0 3\n"
        "250 3   # repeat of the hot id\n"
        "\n"
        "900 7\n",
        encoding="utf-8",
    )
    assert load_trace(str(path)) == [(0, 3), (250, 3), (900, 7)]
    ids, times = drive(4, lambda c: TraceReplayStream(
        c, 0, 2, trace=str(path), name="prop-trace-file"))
    assert ids == [3, 3, 7]
    assert times == [0, 250, 900]
