"""Unit tests for the declarative scenario spec layer."""

import pytest

from repro.faults import FaultKind
from repro.scenarios import (
    FaultSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)


# ------------------------------------------------------------ WorkloadSpec
def test_unknown_workload_kind_rejected():
    with pytest.raises(ValueError, match="unknown workload kind"):
        WorkloadSpec("tsunami", count=1, src=0, dst=1)


def test_unicast_workload_requires_endpoints():
    with pytest.raises(ValueError, match="needs src and dst"):
        WorkloadSpec("poisson", count=10)


def test_broadcast_workload_needs_no_endpoints():
    WorkloadSpec("broadcast", count=4)


def test_zero_count_rejected():
    with pytest.raises(ValueError, match="count must be"):
        WorkloadSpec("message", count=0, src=0, dst=1)


# --------------------------------------------------------------- FaultSpec
def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("meteor_strike", at_tours=1)


def test_fault_tours_resolve_against_origin_and_tour():
    spec = ScenarioSpec(
        name="t",
        faults=(
            FaultSpec("crash_node", at_tours=10, node=2),
            FaultSpec("cut_link", at_tours=5.5, node=1, switch=0),
        ),
    )
    sched = spec.build_fault_schedule(origin_ns=1_000, tour_ns=100)
    by_kind = {a.kind: a for a in sched.actions}
    assert by_kind[FaultKind.CRASH_NODE].at_ns == 1_000 + 10 * 100
    assert by_kind[FaultKind.CUT_LINK].at_ns == 1_000 + 550


def test_flap_fault_expands_to_crash_recover_train():
    spec = ScenarioSpec(
        name="t",
        faults=(FaultSpec("flap_node", at_tours=1, node=3, flaps=2,
                          down_tours=2, up_tours=3),),
    )
    sched = spec.build_fault_schedule(origin_ns=0, tour_ns=1_000)
    kinds = [a.kind for a in sorted(sched.actions, key=lambda a: a.at_ns)]
    assert kinds == [
        FaultKind.CRASH_NODE, FaultKind.RECOVER_NODE,
        FaultKind.CRASH_NODE, FaultKind.RECOVER_NODE,
    ]


# ------------------------------------------------------------ ScenarioSpec
def test_unknown_invariant_rejected():
    with pytest.raises(ValueError, match="unknown invariant"):
        ScenarioSpec(name="t", invariants=("always_sunny",))


def test_membership_invariant_requires_membership():
    with pytest.raises(ValueError, match="requires membership"):
        ScenarioSpec(
            name="t", invariants=("membership_view_consistent",)
        )


def test_partition_requires_two_switches():
    with pytest.raises(ValueError, match=">= 2 switches"):
        ScenarioSpec(
            name="t",
            topology=TopologySpec(n_nodes=4, n_switches=1),
            faults=(FaultSpec("partition", at_tours=1, nodes=(0, 1),
                              switches=(0,)),),
        )


def test_with_seed_returns_reseeded_copy():
    spec = ScenarioSpec(name="t", seed=1)
    other = spec.with_seed(42)
    assert other.seed == 42 and spec.seed == 1
    assert other.name == spec.name


def test_to_dict_is_json_shaped():
    import json

    spec = ScenarioSpec(
        name="t",
        workloads=(
            WorkloadSpec("poisson", count=3, src=0, dst=1,
                         params={"mean_interval_ns": 100}),
        ),
        faults=(FaultSpec("crash_node", at_tours=1, node=0),),
    )
    encoded = json.dumps(spec.to_dict())
    assert '"poisson"' in encoded and '"crash_node"' in encoded


def test_broadcast_rejects_silently_ignorable_fields():
    with pytest.raises(ValueError, match="no src/dst"):
        WorkloadSpec("broadcast", count=4, src=0, dst=1)
    with pytest.raises(ValueError, match="cannot be reliable"):
        WorkloadSpec("broadcast", count=4, reliable=True)
    with pytest.raises(ValueError, match="no params"):
        WorkloadSpec("broadcast", count=4, params={"interval_ns": 5})
