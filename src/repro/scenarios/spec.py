"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is plain data: topology shape, a workload mix,
a fault storyline, membership configuration and a run horizon, with all
times expressed in **ring tours** so the same scenario scales across
fibre lengths and node counts.  The :mod:`repro.scenarios.runner` turns
a spec into a live cluster, runs it, and checks the spec's invariants.

Keeping specs declarative buys three things the hand-wired experiment
scripts never had:

* every experiment setup is serialisable (``to_dict``) and lands in the
  machine-readable bench JSON next to its results;
* scenarios compose — the library in :mod:`repro.scenarios.library`
  covers quiet rings to 64-node partitioned storms with the same few
  dataclasses;
* runs are replayable — spec + seed pins the whole timeline, which the
  golden-trace regression suite exploits.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..caching import (
    CACHE_POLICIES,
    CacheConfig,
    DEFAULT_CONTENT_CHANNEL,
    EVICTION_POLICIES,
)
from ..cluster import AmpNetCluster, ClusterConfig
from ..faults import FaultSchedule
from ..resilience import ResilienceConfig

__all__ = [
    "SegmentSpec",
    "RouterSpec",
    "TopologySpec",
    "CacheSpec",
    "WorkloadSpec",
    "FaultSpec",
    "ScenarioSpec",
]

#: Workload/fault addressing: a plain node id on single-segment
#: topologies, a ``(segment, node)`` pair on multi-segment ones.
Address = Union[int, Tuple[int, int]]


@dataclass(frozen=True)
class SegmentSpec:
    """One ring segment of a multi-segment topology (user nodes only;
    gateway nodes for attached routers are appended automatically)."""

    n_nodes: int
    n_switches: int = 2
    fiber_m: float = 50.0


@dataclass(frozen=True)
class RouterSpec:
    """One segment router and the segment indices it joins.

    ``priority`` is the spanning-tree election weight (lower wins, ties
    broken by router index): on redundant shapes — several routers
    joining the same segments — it decides deterministically which
    router forwards and which stands by blocked.
    """

    segments: Tuple[int, ...]
    egress_capacity: int = 64
    egress_window: int = 4
    priority: int = 128
    #: resilience-pattern toggles for this router (see
    #: :class:`repro.resilience.ResilienceConfig`); ``None`` keeps every
    #: pattern off — the exact pre-resilience wire behaviour.
    resilience: Optional[ResilienceConfig] = None
    #: on-path content cache at this router (see
    #: :class:`repro.caching.CacheConfig`); ``None`` keeps the
    #: forwarding path bit-identical to the cache-free router.
    cache: Optional[CacheConfig] = None
    #: routing area (see :mod:`repro.routing.router`); 0 keeps the flat
    #: single-area v2 advertisement wire format byte for byte, 1..255
    #: opts the router into v3 per-area summarized advertisements.
    area: int = 0
    #: advertisement period in tours of the largest attached segment;
    #: ``None`` keeps the router's 50-tour default.  Mesh scenarios set
    #: a small value so route convergence does not dominate the run.
    advertise_period_tours: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "segments", tuple(self.segments))
        if not 0 <= self.priority <= 255:
            raise ValueError("router priority must fit one byte (0..255)")
        if not 0 <= self.area <= 255:
            raise ValueError("router area must fit one byte (0..255)")
        if (self.advertise_period_tours is not None
                and self.advertise_period_tours <= 0):
            raise ValueError("advertise period must be a positive tour count")
        if self.resilience is not None and not isinstance(
            self.resilience, ResilienceConfig
        ):
            object.__setattr__(
                self, "resilience", ResilienceConfig(**dict(self.resilience))
            )
        if self.cache is not None and not isinstance(self.cache, CacheConfig):
            object.__setattr__(
                self, "cache", CacheConfig(**dict(self.cache))
            )


@dataclass(frozen=True)
class TopologySpec:
    """Physical shape of the cluster under test.

    Two mutually exclusive forms:

    * **single segment** (the default): ``n_nodes`` nodes wired to
      ``n_switches`` switches — every pre-routing scenario, unchanged;
    * **multi segment**: ``segments`` lists the rings and ``routers``
      the :class:`~repro.routing.SegmentRouter` attachments joining
      them into one routed cluster (see :mod:`repro.routing`).  The
      single-segment fields are ignored in this form.
    """

    n_nodes: int = 6
    n_switches: int = 4
    fiber_m: float = 50.0
    segments: Tuple[SegmentSpec, ...] = ()
    routers: Tuple[RouterSpec, ...] = ()

    def __post_init__(self) -> None:
        segments = tuple(
            s if isinstance(s, SegmentSpec) else SegmentSpec(**dict(s))
            for s in self.segments
        )
        routers = tuple(
            r if isinstance(r, RouterSpec) else RouterSpec(**dict(r))
            for r in self.routers
        )
        object.__setattr__(self, "segments", segments)
        object.__setattr__(self, "routers", routers)
        if routers and not segments:
            raise ValueError("routers need a segments list")
        for router in routers:
            for seg in router.segments:
                if not 0 <= seg < len(segments):
                    raise ValueError(
                        f"router references segment {seg}; topology has "
                        f"segments 0..{len(segments) - 1}"
                    )

    # --------------------------------------------------- mesh shorthands
    @classmethod
    def star_mesh(
        cls,
        n_segments: int,
        nodes_per_segment: int,
        *,
        redundancy: int = 0,
        n_switches: int = 2,
        fiber_m: float = 50.0,
        advertise_period_tours: Optional[float] = None,
    ) -> "TopologySpec":
        """Hub-and-spoke: one central router attached to every segment
        (plus ``redundancy`` priority-240 standbys).  Mirrors
        :meth:`repro.routing.RoutedClusterConfig.star_mesh` so specs and
        hand-built clusters describe the same wire topology."""
        all_segs = tuple(range(n_segments))
        apt = advertise_period_tours
        routers = [
            RouterSpec(segments=all_segs, priority=64,
                       advertise_period_tours=apt)
        ]
        routers += [
            RouterSpec(segments=all_segs, priority=240,
                       advertise_period_tours=apt)
            for _ in range(redundancy)
        ]
        return cls(
            segments=tuple(
                SegmentSpec(nodes_per_segment, n_switches, fiber_m)
                for _ in range(n_segments)
            ),
            routers=tuple(routers),
        )

    @classmethod
    def area_mesh(
        cls,
        n_areas: int,
        segments_per_area: int,
        nodes_per_segment: int,
        *,
        redundant_spokes: bool = False,
        n_switches: int = 2,
        fiber_m: float = 50.0,
        advertise_period_tours: Optional[float] = None,
    ) -> "TopologySpec":
        """Hierarchical mesh: a hub star per area, areas stitched into a
        border-router cycle, summaries carrying the inter-area routes.
        Mirrors :meth:`repro.routing.RoutedClusterConfig.area_mesh`."""
        spa = segments_per_area
        apt = advertise_period_tours
        routers = []
        for ai in range(n_areas):
            segs = tuple(range(ai * spa, (ai + 1) * spa))
            routers.append(
                RouterSpec(segments=segs, priority=64, area=ai + 1,
                           advertise_period_tours=apt)
            )
            if redundant_spokes:
                routers.append(
                    RouterSpec(segments=segs, priority=240, area=ai + 1,
                               advertise_period_tours=apt)
                )
        if n_areas == 2:
            border_pairs = [(0, 1)]
        elif n_areas > 2:
            border_pairs = [(ai, (ai + 1) % n_areas) for ai in range(n_areas)]
        else:
            border_pairs = []
        for a, b in border_pairs:
            routers.append(
                RouterSpec(
                    segments=(a * spa, b * spa), priority=128, area=a + 1,
                    advertise_period_tours=apt,
                )
            )
        return cls(
            segments=tuple(
                SegmentSpec(nodes_per_segment, n_switches, fiber_m)
                for _ in range(n_areas * spa)
            ),
            routers=tuple(routers),
        )

    @property
    def multi_segment(self) -> bool:
        return bool(self.segments)

    @property
    def addressable_nodes(self) -> int:
        """User-addressable nodes across every segment."""
        if self.multi_segment:
            return sum(s.n_nodes for s in self.segments)
        return self.n_nodes


@dataclass(frozen=True)
class CacheSpec:
    """The in-network caching service of a scenario: one origin node and
    the :class:`~repro.caching.SegmentCache` nodes fronting it.

    Addresses follow the workload convention — plain node ids on a
    single-segment topology, ``(segment, node)`` pairs on a routed one.
    ``caches`` may be empty: on a routed topology with router
    ``cache=CacheConfig(enabled=True)`` the gateway routers themselves
    are the cache tier (the on-path tap), and the spec only places the
    origin.  ``flush_interval_tours`` scales the write-behind flush
    timer with the ring tour, like every other scenario time knob.
    """

    origin: Address
    caches: Tuple[Address, ...] = ()
    policy: str = "read_through"
    capacity: int = 64
    eviction: str = "lru"
    content_bytes: int = 40
    channel: int = DEFAULT_CONTENT_CHANNEL
    flush_interval_tours: float = 20.0
    flush_batch: int = 8

    def __post_init__(self) -> None:
        if isinstance(self.origin, (list, tuple)):
            object.__setattr__(self, "origin", tuple(self.origin))
        object.__setattr__(
            self,
            "caches",
            tuple(
                tuple(c) if isinstance(c, (list, tuple)) else c
                for c in self.caches
            ),
        )
        if self.policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {self.policy!r}; "
                f"expected one of {CACHE_POLICIES}"
            )
        if self.eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        if self.capacity < 1:
            raise ValueError("cache capacity must be >= 1 entry")
        if self.content_bytes < 1:
            raise ValueError("content_bytes must be >= 1")
        if not 0 <= self.channel <= 0xF:
            raise ValueError("cache channel out of range (0..15)")
        if self.flush_interval_tours <= 0 or self.flush_batch < 1:
            raise ValueError("flush interval and batch must be positive")
        if self.origin in self.caches:
            raise ValueError("the origin node cannot also be a cache")


#: Workload kinds the runner knows how to instantiate.
WORKLOAD_KINDS = (
    "message",
    "file",
    "broadcast",
    "cluster_broadcast",
    "poisson",
    "inhomogeneous_poisson",
    "burst",
    "zipf",
    "trace_replay",
)

#: Content request/response kinds — always messenger-carried, addressed
#: at a content service placed by the scenario's :class:`CacheSpec`.
CONTENT_WORKLOAD_KINDS = ("zipf", "trace_replay")


@dataclass(frozen=True)
class WorkloadSpec:
    """One traffic source in the mix.

    ``params`` carries the kind-specific knobs (see
    :mod:`repro.workloads`):

    ``message``                  ``interval_ns``
    ``file``                     ``chunk_bytes``, ``interval_ns``
    ``broadcast``                (none — ``count`` is per node)
    ``cluster_broadcast``        ``interval_ns`` — one source node
                                 (``src``) floods the whole routed
                                 cluster ``count`` times over the
                                 spanning tree; every other node
                                 (gateways included) hears each flood
                                 exactly once
    ``poisson``                  ``mean_interval_ns``
    ``inhomogeneous_poisson``    ``peak_interval_ns`` and a ``profile``
                                 mapping: ``{"shape": "sinusoidal",
                                 "period_tours": ..., "floor": ...}`` or
                                 ``{"shape": "ramp", "start_tours": ...,
                                 "end_tours": ..., "floor": ...}``
    ``burst``                    ``burst_mean``, ``intra_gap_ns``,
                                 ``off_mean_ns``
    ``zipf``                     ``interval_ns``, ``alpha``,
                                 ``catalog_size``, ``request_bytes``
    ``trace_replay``             ``trace`` (list of ``[time_ns,
                                 content_id]`` pairs) or ``trace_path``,
                                 plus ``request_bytes``; ``count`` must
                                 equal the trace length

    ``reliable`` routes unicast payloads through the messenger so they
    survive ring churn (required for fault scenarios that assert full
    delivery).  The content kinds (``zipf``/``trace_replay``) are
    request/response streams against the scenario's :class:`CacheSpec`
    service — inherently messenger-carried, so they must declare
    ``reliable=True``; ``dst`` is the node they address (a cache, or
    the origin when crossings should hit the on-path router tap).

    Any stream kind except ``file``/``broadcast`` additionally accepts a
    ``pareto_sizes`` param (``{"alpha": ..., "min_bytes": ...,
    "cap_bytes": ...}``): payload sizes are then drawn bounded-Pareto
    from a dedicated ``workload.<name>.sizes`` random stream.  Sized
    payloads fragment through the messenger, so they require
    ``reliable=True``.

    Two mesh-era params: the message-stream kinds (``message``,
    ``poisson``, ``inhomogeneous_poisson``, ``burst``) accept a
    ``dst_pool`` param — a list of destinations replacing ``dst``, one
    drawn per message from a dedicated ``workload.<name>.dst`` stream
    (requires ``reliable=True`` and an explicit ``name``) — and those
    kinds plus ``cluster_broadcast`` accept ``start_tours``, a delay
    before the first send that mesh scenarios use to hold multi-hop
    traffic until the routers' distance-vector exchange has converged.
    """

    kind: str
    count: int
    src: Optional[Address] = None
    dst: Optional[Address] = None
    channel: int = 0
    name: Optional[str] = None
    reliable: bool = False
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Global addresses may arrive as lists from a JSON round-trip.
        for attr in ("src", "dst"):
            value = getattr(self, attr)
            if isinstance(value, (list, tuple)):
                value = tuple(value)
                if len(value) != 2:
                    raise ValueError(
                        f"{attr} global address must be (segment, node)"
                    )
                object.__setattr__(self, attr, value)
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; "
                f"expected one of {WORKLOAD_KINDS}"
            )
        if self.count < 1:
            raise ValueError("workload count must be >= 1")
        if self.kind == "broadcast":
            # Every field the runner would silently ignore is rejected
            # here, so a typo'd knob fails at spec build time.
            if self.src is not None or self.dst is not None:
                raise ValueError("broadcast workloads take no src/dst "
                                 "(every node transmits)")
            if self.reliable:
                raise ValueError("broadcast workloads cannot be reliable "
                                 "(raw-MAC drop accounting is their point)")
            if self.params:
                raise ValueError(
                    f"broadcast workloads take no params, got "
                    f"{sorted(self.params)}"
                )
        elif self.kind == "cluster_broadcast":
            if self.src is None:
                raise ValueError("cluster_broadcast workloads need a src")
            if self.dst is not None:
                raise ValueError(
                    "cluster_broadcast workloads take no dst (the whole "
                    "routed cluster is the destination)"
                )
            if self.reliable:
                raise ValueError(
                    "cluster_broadcast workloads cannot be reliable "
                    "(broadcasts have no ack path)"
                )
        elif self.src is None or (
            self.dst is None and "dst_pool" not in self.params
        ):
            raise ValueError(f"{self.kind} workload needs src and dst "
                             "(or a dst_pool param)")
        if self.kind in CONTENT_WORKLOAD_KINDS and not self.reliable:
            raise ValueError(
                f"{self.kind} workloads are messenger-carried "
                "request/response streams; declare reliable=True"
            )


#: Fault kinds, mirroring the FaultSchedule builder methods.
FAULT_KINDS = (
    "cut_link",
    "restore_link",
    "fail_switch",
    "repair_switch",
    "crash_node",
    "recover_node",
    "flap_node",
    "partition",
    "heal_partition",
    "crash_router",
    "recover_router",
)

#: Kinds targeting a segment router (multi-segment topologies only);
#: they arm against the routed cluster itself, not one segment.
ROUTER_FAULT_KINDS = ("crash_router", "recover_router")


@dataclass(frozen=True)
class FaultSpec:
    """One fault (or churn train) at a tour-relative instant.

    ``at_tours`` counts from the moment the initial ring certified, so
    the same storyline lands at the same protocol phase regardless of
    topology size or fibre length.  On multi-segment topologies
    ``segment`` names the ring the fault strikes (default: segment 0);
    node and switch ids are then local to that segment.
    """

    kind: str
    at_tours: float
    node: Optional[int] = None
    switch: Optional[int] = None
    #: target segment on multi-segment topologies (ignored otherwise)
    segment: int = 0
    #: target router index (router fault kinds only)
    router: Optional[int] = None
    #: node ids on side A (partition kinds)
    nodes: Tuple[int, ...] = ()
    #: switch ids granted to side A (partition kinds)
    switches: Tuple[int, ...] = ()
    #: flap_node train shape
    flaps: int = 3
    down_tours: float = 40.0
    up_tours: float = 120.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind in ROUTER_FAULT_KINDS and self.router is None:
            raise ValueError(f"{self.kind} needs a router index")

    def add_to(self, sched: FaultSchedule, origin_ns: int, tour_ns: int) -> None:
        """Append this fault to ``sched`` with tours resolved to ns."""
        at_ns = origin_ns + int(self.at_tours * tour_ns)
        if self.kind in ("cut_link", "restore_link"):
            getattr(sched, self.kind)(at_ns, self.node, self.switch)
        elif self.kind in ("fail_switch", "repair_switch"):
            getattr(sched, self.kind)(at_ns, self.switch)
        elif self.kind in ("crash_node", "recover_node"):
            getattr(sched, self.kind)(at_ns, self.node)
        elif self.kind == "flap_node":
            sched.flap_node(
                at_ns, self.node, flaps=self.flaps,
                down_ns=max(1, int(self.down_tours * tour_ns)),
                up_ns=max(1, int(self.up_tours * tour_ns)),
            )
        elif self.kind in ROUTER_FAULT_KINDS:
            getattr(sched, self.kind)(at_ns, self.router)
        else:  # partition / heal_partition
            getattr(sched, self.kind)(at_ns, self.nodes, self.switches)


#: Invariant names the runner can check (see runner._INVARIANTS).
INVARIANT_NAMES = (
    "no_drops",
    "all_delivered",
    "roster_converged",
    "membership_view_consistent",
    "no_duplicate_deliveries",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible experiment description."""

    name: str
    description: str = ""
    topology: TopologySpec = field(default_factory=TopologySpec)
    seed: int = 0
    membership: bool = False
    membership_liveness: bool = False
    workloads: Tuple[WorkloadSpec, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    #: in-network caching service (origin + cache nodes); ``None`` means
    #: no content services are deployed — the pre-caching timeline.
    cache: Optional[CacheSpec] = None
    #: main run horizon after ring-up, in ring tours
    horizon_tours: int = 400
    #: extra settling time granted while workloads are still completing
    grace_tours: int = 2000
    invariants: Tuple[str, ...] = (
        "no_drops", "all_delivered", "roster_converged",
    )
    #: node ids expected to be dead when the run ends (shapes the
    #: roster_converged and membership_view_consistent checks); global
    #: ``(segment, node)`` addresses on multi-segment topologies
    expect_dead: Tuple[Address, ...] = ()

    def __post_init__(self) -> None:
        for inv in self.invariants:
            if inv not in INVARIANT_NAMES:
                raise ValueError(
                    f"unknown invariant {inv!r}; expected one of {INVARIANT_NAMES}"
                )
        if "membership_view_consistent" in self.invariants and not self.membership:
            raise ValueError(
                "membership_view_consistent requires membership=True"
            )
        multi = self.topology.multi_segment
        if self.cache is not None and not isinstance(self.cache, CacheSpec):
            object.__setattr__(self, "cache", CacheSpec(**dict(self.cache)))
        if self.cache is not None:
            for what, addr in (
                ("cache origin", self.cache.origin),
                *(("cache node", c) for c in self.cache.caches),
            ):
                if multi:
                    if not isinstance(addr, tuple):
                        raise ValueError(
                            f"multi-segment topologies address the "
                            f"{what} as (segment, node); got {addr!r}"
                        )
                    seg, _node = addr
                    if not 0 <= seg < len(self.topology.segments):
                        raise ValueError(
                            f"{what} names segment {seg}; topology has "
                            f"segments 0..{len(self.topology.segments) - 1}"
                        )
                elif isinstance(addr, tuple):
                    raise ValueError(
                        f"single-segment topologies use plain node ids "
                        f"for the {what}; got {addr!r}"
                    )
        for workload in self.workloads:
            if workload.kind in CONTENT_WORKLOAD_KINDS and self.cache is None:
                raise ValueError(
                    f"{workload.kind} workloads need the scenario to "
                    "declare a CacheSpec (they address its services)"
                )
        object.__setattr__(
            self,
            "expect_dead",
            tuple(
                tuple(d) if isinstance(d, (list, tuple)) else d
                for d in self.expect_dead
            ),
        )
        for fault in self.faults:
            if fault.kind in ROUTER_FAULT_KINDS:
                if not multi:
                    raise ValueError(
                        f"{fault.kind} needs a multi-segment topology "
                        "(single rings have no routers)"
                    )
                if not 0 <= fault.router < len(self.topology.routers):
                    raise ValueError(
                        f"fault targets router {fault.router}; topology "
                        f"has routers 0..{len(self.topology.routers) - 1}"
                    )
                continue
            if multi and not 0 <= fault.segment < len(self.topology.segments):
                raise ValueError(
                    f"fault targets segment {fault.segment}; topology has "
                    f"segments 0..{len(self.topology.segments) - 1}"
                )
            if fault.kind in ("partition", "heal_partition"):
                n_switches = (
                    self.topology.segments[fault.segment].n_switches
                    if multi else self.topology.n_switches
                )
                if n_switches < 2:
                    raise ValueError("partition scenarios need >= 2 switches")
        for workload in self.workloads:
            for attr in ("src", "dst"):
                addr = getattr(workload, attr)
                if addr is None:
                    continue
                if multi:
                    if not isinstance(addr, tuple):
                        raise ValueError(
                            f"multi-segment workloads address nodes as "
                            f"(segment, node); got {attr}={addr!r}"
                        )
                    seg, _node = addr
                    if not 0 <= seg < len(self.topology.segments):
                        raise ValueError(
                            f"workload {attr} names segment {seg}; topology "
                            f"has segments 0..{len(self.topology.segments) - 1}"
                        )
                elif isinstance(addr, tuple):
                    raise ValueError(
                        f"single-segment workloads use plain node ids; "
                        f"got {attr}={addr!r}"
                    )
            if multi and workload.kind == "broadcast":
                raise ValueError(
                    "broadcast workloads are per-ring; use one scenario "
                    "per segment or unicast mixes on routed topologies"
                )
            if workload.kind == "cluster_broadcast" and not multi:
                raise ValueError(
                    "cluster_broadcast workloads need a multi-segment "
                    "topology (single rings use the broadcast kind)"
                )
            if (
                multi
                and not workload.reliable
                and workload.kind != "cluster_broadcast"
            ):
                raise ValueError(
                    "multi-segment workloads must be reliable=True (raw "
                    "MAC cells carry no global address)"
                )

    # ------------------------------------------------------------- builders
    def with_seed(self, seed: int) -> "ScenarioSpec":
        return replace(self, seed=seed)

    def with_size(self, n_nodes: int) -> "ScenarioSpec":
        """The same scenario on an ``n_nodes``-node ring.

        The size axis of a sweep grid (see :mod:`repro.sweep`): only the
        topology scales — workloads, faults and invariants are untouched,
        so every node id the spec references must still exist on the
        resized ring.  The name gains an ``_n{size}`` suffix so grid
        rows, digests and emissions stay distinguishable per size.
        Single-segment topologies only (routed shapes size their
        segments explicitly).
        """
        if self.topology.multi_segment:
            raise ValueError(
                "with_size applies to single-segment topologies; "
                "multi-segment scenarios size their segments explicitly"
            )
        if n_nodes < 2:
            raise ValueError("with_size needs at least 2 nodes")
        from ..micropacket import BROADCAST

        referenced = set()
        for workload in self.workloads:
            for attr in ("src", "dst"):
                addr = getattr(workload, attr)
                if isinstance(addr, int) and addr != BROADCAST:
                    referenced.add(addr)
        for fault in self.faults:
            if fault.node is not None:
                referenced.add(fault.node)
            referenced.update(fault.nodes)
        for dead in self.expect_dead:
            if isinstance(dead, int):
                referenced.add(dead)
        out_of_range = sorted(n for n in referenced if n >= n_nodes)
        if out_of_range:
            raise ValueError(
                f"scenario {self.name!r} references node ids "
                f"{out_of_range} which do not exist at n_nodes={n_nodes}"
            )
        return replace(
            self,
            name=f"{self.name}_n{n_nodes}",
            topology=replace(self.topology, n_nodes=n_nodes),
        )

    def build_cluster(self, seed: Optional[int] = None):
        """Construct the (not yet started) cluster this spec describes.

        Returns an :class:`~repro.cluster.AmpNetCluster` for the classic
        single-segment form, a :class:`~repro.routing.RoutedCluster` for
        the ``segments``/``routers`` form.
        """
        seed = self.seed if seed is None else seed
        if not self.topology.multi_segment:
            return AmpNetCluster(
                config=ClusterConfig(
                    n_nodes=self.topology.n_nodes,
                    n_switches=self.topology.n_switches,
                    fiber_m=self.topology.fiber_m,
                    seed=seed,
                    membership=self.membership,
                    membership_liveness=self.membership_liveness,
                )
            )
        from ..routing import RoutedCluster, RoutedClusterConfig, RouterConfig

        return RoutedCluster(
            RoutedClusterConfig(
                segments=[
                    ClusterConfig(
                        n_nodes=seg.n_nodes,
                        n_switches=seg.n_switches,
                        fiber_m=seg.fiber_m,
                        membership=self.membership,
                        membership_liveness=self.membership_liveness,
                    )
                    for seg in self.topology.segments
                ],
                routers=[
                    RouterConfig(
                        segments=r.segments,
                        egress_capacity=r.egress_capacity,
                        egress_window=r.egress_window,
                        priority=r.priority,
                        resilience=r.resilience,
                        cache=r.cache,
                        area=r.area,
                        advertise_period_tours=r.advertise_period_tours,
                    )
                    for r in self.topology.routers
                ],
                seed=seed,
            )
        )

    def build_fault_schedule(self, origin_ns: int, tour_ns: int) -> FaultSchedule:
        """Resolve the tour-relative fault storyline to absolute ns."""
        sched = FaultSchedule()
        for fault in self.faults:
            fault.add_to(sched, origin_ns, tour_ns)
        return sched

    def build_fault_schedules(
        self, origin_ns: int, tour_ns: int
    ) -> Dict[int, FaultSchedule]:
        """Per-segment fault schedules (multi-segment topologies).

        Each schedule is armed against its own segment's sub-cluster, so
        node and switch ids in a :class:`FaultSpec` stay segment-local.
        Router faults are excluded — they target the routed cluster as a
        whole (see :meth:`build_router_fault_schedule`).
        """
        out: Dict[int, FaultSchedule] = {}
        for fault in self.faults:
            if fault.kind in ROUTER_FAULT_KINDS:
                continue
            sched = out.setdefault(fault.segment, FaultSchedule())
            fault.add_to(sched, origin_ns, tour_ns)
        return out

    def build_router_fault_schedule(
        self, origin_ns: int, tour_ns: int
    ) -> FaultSchedule:
        """Router crash/recover storyline, armed against the
        :class:`~repro.routing.RoutedCluster` itself."""
        sched = FaultSchedule()
        for fault in self.faults:
            if fault.kind in ROUTER_FAULT_KINDS:
                fault.add_to(sched, origin_ns, tour_ns)
        return sched

    # ---------------------------------------------------------------- misc
    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form, embedded in bench emissions and the CLI.

        Optional late-addition fields (``cache`` here and on routers)
        are omitted while unset so every pre-caching emission keeps its
        exact committed schema — the F3 regression pins this.
        """
        out = asdict(self)
        out["workloads"] = [dict(asdict(w), params=dict(w.params))
                            for w in self.workloads]
        if out.get("cache") is None:
            out.pop("cache", None)
        for router in out["topology"]["routers"]:
            if router.get("cache") is None:
                router.pop("cache", None)
            if not router.get("area"):
                # Flat single-area routers omit the field so every
                # pre-mesh emission keeps its exact committed schema.
                router.pop("area", None)
            if router.get("advertise_period_tours") is None:
                router.pop("advertise_period_tours", None)
        return out
