"""Workload generators for the experiments.

Slide 7 motivates AmpNet with nodes concurrently inserting *multiple*
data streams — applications sending files next to applications sending
messages.  These generators drive exactly those traffic classes through
the public MAC/transport APIs and account for what was offered,
delivered and dropped, which is all the benchmarks need.

Every generator owns the receive handlers it installs and removes them
again in :meth:`close`, so several sequential workloads can share one
cluster without double-counting each other's deliveries.  Stochastic
arrival processes (Poisson, inhomogeneous Poisson, on/off bursts) build
on the same machinery in :mod:`repro.workloads.stochastic` by overriding
the :meth:`MessageStream._gap_ns` hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..micropacket import BROADCAST, MicroPacket, MicroPacketType
from ..sim import LatencyStat

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import AmpNetCluster

__all__ = [
    "StreamStats",
    "MessageStream",
    "FileStream",
    "AllToAllBroadcast",
    "ClusterBroadcastStream",
    "run_slide7_mixed_workload",
]


@dataclass
class StreamStats:
    """Per-stream accounting shared by all generators."""

    name: str
    offered: int = 0
    delivered: int = 0
    bytes_delivered: int = 0
    latency: LatencyStat = field(default_factory=LatencyStat)

    def goodput_bits_per_ns(self, span_ns: int) -> float:
        return 8 * self.bytes_delivered / span_ns if span_ns else 0.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly summary used by the scenario/bench harnesses."""
        out: Dict[str, float] = {
            "name": self.name,
            "offered": self.offered,
            "delivered": self.delivered,
            "bytes_delivered": self.bytes_delivered,
        }
        if self.latency.count:
            out["latency"] = self.latency.summary()
        return out


class MessageStream:
    """Fixed-cell DATA messages from one node at a constant rate.

    ``reliable=True`` routes the same payloads through the node's
    messenger instead of raw MAC cells: deliveries then survive ring
    teardowns via the messenger's retransmission, which is what fault
    scenarios need to assert "everything offered arrived".

    ``dst_pool`` replaces the single ``dst`` with a set of candidate
    destinations: each message picks one uniformly from a dedicated
    ``workload.<name>.dst`` random stream (deterministic under the
    master seed, and isolated so pooling never perturbs the arrival
    draws).  Pools are how routed scenarios spray traffic across
    ``(segment, node)`` addresses; they require ``reliable=True`` and an
    explicit ``name``.
    """

    def __init__(
        self,
        cluster: "AmpNetCluster",
        src: int,
        dst: Optional[int],
        interval_ns: int,
        count: int,
        channel: int = 0,
        name: Optional[str] = None,
        reliable: bool = False,
        size_fn: Optional[Callable[[int], int]] = None,
        dst_pool: Optional[Sequence] = None,
        start_ns: int = 0,
    ):
        self.cluster = cluster
        self.src = src
        self.dst = dst
        self.interval_ns = interval_ns
        self.count = count
        self.channel = channel
        self.reliable = reliable
        #: delay before the first send — mesh scenarios use it to hold
        #: multi-hop traffic until the routers' distance-vector exchange
        #: has had a few advertise periods to converge.
        self.start_ns = start_ns
        #: optional per-message payload size hook (seq -> bytes); sizes
        #: above one cell require the messenger's fragmentation, so a
        #: sized stream must be reliable (see ParetoSizeMixin).
        self.size_fn = size_fn
        if reliable and dst == BROADCAST:
            raise ValueError("reliable streams need a unicast destination")
        if size_fn is not None and not reliable:
            raise ValueError(
                "size_fn payloads exceed one fixed cell; use reliable=True"
            )
        if dst_pool is not None:
            if dst is not None:
                raise ValueError("dst and dst_pool are mutually exclusive")
            if not reliable:
                raise ValueError("dst_pool streams must be reliable=True")
            if name is None:
                raise ValueError("dst_pool streams need an explicit name "
                                 "(it seeds the destination stream)")
            pool = [tuple(d) if isinstance(d, list) else d for d in dst_pool]
            if not pool:
                raise ValueError("dst_pool must not be empty")
            if src in pool:
                raise ValueError("dst_pool must not contain the source")
            if len(set(pool)) != len(pool):
                raise ValueError("dst_pool entries must be distinct")
            self._dst_rng = cluster.sim.rng.stream(f"workload.{name}.dst")
            self.dst_pool: Optional[List] = pool
        elif dst is None:
            raise ValueError("stream needs a dst (or a dst_pool)")
        else:
            self.dst_pool = None
        self.stats = StreamStats(name or f"msg-{src}->{dst}")
        #: simulated send instant of every offered packet (tests and the
        #: stochastic property suite assert on arrival processes)
        self.tx_times: List[int] = []
        self._sent_at: Dict[bytes, int] = {}
        self._rx_nodes: List = []
        self.closed = False
        self._install_rx()
        self._proc = cluster.sim.process(self._tx(), name=self.stats.name)

    # ------------------------------------------------------------ receive
    def _install_rx(self) -> None:
        if self.dst_pool is not None:
            for dst in self.dst_pool:
                self.cluster.nodes[dst].messenger.on_message(
                    self.channel, self._rx_reliable
                )
            return
        if self.reliable:
            self.cluster.nodes[self.dst].messenger.on_message(
                self.channel, self._rx_reliable
            )
            return
        if self.dst == BROADCAST:
            targets = [n for i, n in self.cluster.nodes.items() if i != self.src]
        else:
            targets = [self.cluster.nodes[self.dst]]
        for node in targets:
            node.register_default(self._rx)
            self._rx_nodes.append(node)

    def close(self) -> None:
        """Remove every handler this stream installed (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if self.dst_pool is not None:
            for dst in self.dst_pool:
                self.cluster.nodes[dst].messenger.off_message(self.channel)
        elif self.reliable:
            self.cluster.nodes[self.dst].messenger.off_message(self.channel)
        for node in self._rx_nodes:
            node.unregister_default(self._rx)
        self._rx_nodes.clear()

    def _rx(self, pkt: MicroPacket, frame) -> None:
        if pkt.ptype != MicroPacketType.DATA or pkt.src != self.src:
            return
        if pkt.channel != self.channel:
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += len(pkt.payload)
        if frame.inserted_at is not None:
            self.stats.latency.add(self.cluster.sim.now - frame.inserted_at)

    def _rx_reliable(self, src: int, payload: bytes, channel: int) -> None:
        if src != self.src:
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += len(payload)
        start = self._sent_at.pop(payload[:8], None)
        if start is not None:
            self.stats.latency.add(self.cluster.sim.now - start)

    # ----------------------------------------------------------- transmit
    def _gap_ns(self, seq: int) -> int:
        """Inter-arrival gap after packet ``seq``; hook for stochastic
        subclasses (must be deterministic given the cluster's seed)."""
        return self.interval_ns

    def _payload_for(self, seq: int) -> bytes:
        """Eight-byte sequence header, padded out to the hooked size."""
        header = seq.to_bytes(8, "little")
        if self.size_fn is None:
            return header
        size = max(8, int(self.size_fn(seq)))
        return header + bytes((seq + i) % 256 for i in range(size - 8))

    def _dst_for(self, seq: int):
        """Destination of packet ``seq`` (drawn from the pool if any)."""
        if self.dst_pool is None:
            return self.dst
        return self.dst_pool[self._dst_rng.randrange(len(self.dst_pool))]

    def _tx(self):
        sim = self.cluster.sim
        node = self.cluster.nodes[self.src]
        if self.start_ns:
            yield sim.timeout(self.start_ns)
        for seq in range(self.count):
            payload = self._payload_for(seq)
            self.tx_times.append(sim.now)
            if self.reliable:
                self._sent_at[payload[:8]] = sim.now
                node.messenger.send(self._dst_for(seq), payload, self.channel)
            else:
                pkt = MicroPacket(
                    ptype=MicroPacketType.DATA,
                    src=self.src,
                    dst=self.dst,
                    channel=self.channel,
                    payload=payload,
                ).with_seq(seq)
                node.send(pkt)
            self.stats.offered += 1
            yield sim.timeout(max(0, self._gap_ns(seq)))


class FileStream:
    """Bulk transfer: repeated reliable messages of file-sized chunks."""

    def __init__(
        self,
        cluster: "AmpNetCluster",
        src: int,
        dst: int,
        chunk_bytes: int,
        count: int,
        interval_ns: int = 0,
        channel: int = 11,
        name: Optional[str] = None,
    ):
        self.cluster = cluster
        self.src = src
        self.dst = dst
        self.chunk_bytes = chunk_bytes
        self.count = count
        self.interval_ns = interval_ns
        self.channel = channel
        self.stats = StreamStats(name or f"file-{src}->{dst}")
        self._sent_at: Dict[bytes, int] = {}
        self.closed = False
        cluster.nodes[dst].messenger.on_message(channel, self._rx)
        cluster.sim.process(self._tx(), name=self.stats.name)

    def close(self) -> None:
        """Release the messenger channel this stream claimed."""
        if self.closed:
            return
        self.closed = True
        self.cluster.nodes[self.dst].messenger.off_message(self.channel)

    def _rx(self, src: int, payload: bytes, channel: int) -> None:
        if src != self.src:
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += len(payload)
        start = self._sent_at.pop(payload[:8], None)
        if start is not None:
            self.stats.latency.add(self.cluster.sim.now - start)

    def _tx(self):
        sim = self.cluster.sim
        messenger = self.cluster.nodes[self.src].messenger
        for seq in range(self.count):
            header = seq.to_bytes(8, "little")
            body = header + bytes((seq + i) % 256 for i in range(self.chunk_bytes - 8))
            self._sent_at[header] = sim.now
            handle = messenger.send(self.dst, body, self.channel)
            self.stats.offered += 1
            yield handle.delivered
            if self.interval_ns:
                yield sim.timeout(self.interval_ns)


class AllToAllBroadcast:
    """Every node broadcasts ``count`` cells as fast as flow control
    allows — the slide-8 stress case."""

    def __init__(self, cluster: "AmpNetCluster", count_per_node: int,
                 channel: int = 3):
        self.cluster = cluster
        self.count = count_per_node
        self.channel = channel
        self.stats: Dict[int, StreamStats] = {}
        self.closed = False
        self._sinks: List = []
        for node_id, node in cluster.nodes.items():
            self.stats[node_id] = StreamStats(f"bcast-{node_id}")
            sink = self._make_rx(node_id)
            node.register_default(sink)
            self._sinks.append((node, sink))
        for node_id in cluster.nodes:
            cluster.sim.process(self._tx(node_id), name=f"a2a-{node_id}")

    def close(self) -> None:
        """Remove every per-node default sink (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for node, sink in self._sinks:
            node.unregister_default(sink)
        self._sinks.clear()

    def _make_rx(self, me: int):
        # Bound locally: this sink runs once per delivery per node, which
        # is count * n * (n-1) times per storm.
        stats_by_src = self.stats
        channel = self.channel
        data = MicroPacketType.DATA
        sim = self.cluster.sim

        def rx(pkt: MicroPacket, frame) -> None:
            if pkt.ptype != data or pkt.channel != channel:
                return
            stats = stats_by_src[pkt.src]
            stats.delivered += 1
            stats.bytes_delivered += len(pkt.payload)
            if frame.inserted_at is not None:
                stats.latency.add(sim._now - frame.inserted_at)

        return rx

    def _tx(self, node_id: int):
        sim = self.cluster.sim
        node = self.cluster.nodes[node_id]
        for seq in range(self.count):
            pkt = MicroPacket(
                ptype=MicroPacketType.DATA,
                src=node_id,
                dst=BROADCAST,
                channel=self.channel,
                payload=seq.to_bytes(8, "little"),
            ).with_seq(seq)
            node.send(pkt)
            self.stats[node_id].offered += 1
            yield sim.timeout(0)

    # ------------------------------------------------------------- queries
    def total_drops(self) -> int:
        return sum(
            node.mac.counters["transit_overflow_drop"]
            for node in self.cluster.nodes.values()
        )

    def expected_deliveries(self) -> int:
        n = len(self.cluster.nodes)
        return self.count * n * (n - 1)

    def total_delivered(self) -> int:
        return sum(s.delivered for s in self.stats.values())

    def complete(self) -> bool:
        return self.total_delivered() >= self.expected_deliveries()


class ClusterBroadcastStream:
    """One node floods the whole routed cluster over the spanning tree.

    Each of the ``count`` broadcasts is sent with the explicit
    ``broadcast_scope="cluster"`` opt-in: the frame tours the source's
    ring like any broadcast, and the segment routers re-originate it
    into every other segment exactly once (converged tree; origin-keyed
    dedup absorbs pre-convergence transients).  Every *other* node of
    the cluster — gateway nodes included — counts each flood once, so
    :meth:`expected_deliveries` is ``count * (n_nodes - 1)``.
    """

    def __init__(
        self,
        cluster,
        src,
        interval_ns: int,
        count: int,
        channel: int = 0,
        name: Optional[str] = None,
        start_ns: int = 0,
    ):
        self.cluster = cluster
        self.src = tuple(src)
        self.interval_ns = interval_ns
        self.count = count
        self.channel = channel
        self.start_ns = start_ns
        self.stats = StreamStats(
            name or f"cbcast-{self.src[0]}.{self.src[1]}"
        )
        self.tx_times: List[int] = []
        self._sent_at: Dict[bytes, int] = {}
        #: per-node delivery tally, for the exactly-once assertions
        self.per_node_delivered: Dict = {
            addr: 0 for addr in cluster.nodes
        }
        self.closed = False
        for node in cluster.nodes.values():
            node.messenger.on_message(channel, self._rx_factory(node))
        self._proc = cluster.sim.process(self._tx(), name=self.stats.name)

    def close(self) -> None:
        """Release the channel on every node (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for node in self.cluster.nodes.values():
            node.messenger.off_message(self.channel)

    def _rx_factory(self, node):
        me = (node.messenger.segment_id, node.node_id)

        def rx(src, payload: bytes, channel: int) -> None:
            if src != self.src:
                return
            self.stats.delivered += 1
            self.stats.bytes_delivered += len(payload)
            self.per_node_delivered[me] += 1
            start = self._sent_at.get(payload[:8])
            if start is not None:
                self.stats.latency.add(self.cluster.sim.now - start)

        return rx

    def _tx(self):
        sim = self.cluster.sim
        messenger = self.cluster.nodes[self.src].messenger
        if self.start_ns:
            yield sim.timeout(self.start_ns)
        for seq in range(self.count):
            payload = seq.to_bytes(8, "little")
            self.tx_times.append(sim.now)
            self._sent_at[payload[:8]] = sim.now
            messenger.send(
                BROADCAST, payload, self.channel, broadcast_scope="cluster"
            )
            self.stats.offered += 1
            yield sim.timeout(max(0, self.interval_ns))

    # ------------------------------------------------------------- queries
    def expected_deliveries(self) -> int:
        return self.count * (len(self.cluster.nodes) - 1)

    def complete(self) -> bool:
        return self.stats.delivered >= self.expected_deliveries()

    def duplicate_deliveries(self) -> int:
        """Deliveries beyond exactly-once per node (0 on a settled tree)."""
        return sum(
            max(0, n - self.count)
            for addr, n in self.per_node_delivered.items()
            if addr != self.src
        )


def run_slide7_mixed_workload(cluster: "AmpNetCluster", duration_tours: int = 400):
    """The slide-7 scenario: files and messages inserted concurrently.

    Node 0 and node 3 send files; node 1 and node 2 send messages, all
    at once.  Returns the four streams' stats.
    """
    streams = [
        FileStream(cluster, 0, 2, chunk_bytes=2048, count=8, channel=11),
        MessageStream(cluster, 1, 3, interval_ns=5_000, count=200, channel=0),
        MessageStream(cluster, 2, 0, interval_ns=5_000, count=200, channel=1),
        FileStream(cluster, 3, 1, chunk_bytes=2048, count=8, channel=12),
    ]
    cluster.run(until=cluster.sim.now + duration_tours * cluster.tour_estimate_ns)
    for s in streams:
        s.close()
    return [s.stats for s in streams]
