"""The segment router: a store-and-forward bridge between ring segments.

One :class:`SegmentRouter` owns one *port* per attached segment.  A port
is a gateway node — a full ring member of that segment with its own MAC
and messenger — plus the router-side state: a bounded egress queue, an
insertion controller governing how fast ferried traffic may be
re-originated, and the liveness view of the segment behind the port.

Data path (ingress -> egress)::

    ring A frame, dst_segment=B          ring B
    ------------------------+      +------------------>
        gateway MAC capture |      | gateway messenger
        (frame keeps        |      | re-originates with
         touring ring A)    v      | the origin address
              reassemble fragments | preserved in the
              forwarding table     | header extension
              egress queue --------+

Three properties worth calling out:

* **Tour-as-ack is preserved per segment.**  The captured frame still
  circulates back to its inserter, whose messenger sees a completed
  tour; reliability is therefore hop-by-hop — each ring's messenger
  replays unconfirmed fragments across roster changes on *its* ring,
  and the router's store-and-forward covers the gap between rings.
* **Backpressure reuses the ring's own flow control.**  Each egress
  queue is paced by a :class:`~repro.ring.flow_control.
  InsertionController`: a bounded window of unconfirmed crossings, and
  a pacing gap that backs off multiplicatively as the queue backs up
  (``observe_transit_depth`` fed with the queue depth) — the exact
  slide-8 mechanism, applied one layer up.
* **Forwarding tables are learned, not configured.**  Every advertise
  period a router broadcasts, into each attached segment, the segments
  it can reach (with hop metric) and the live node ids behind them —
  liveness taken from the gateway's gossip membership view when the
  cluster runs one, from the roster otherwise.  Routers hearing an
  advertisement learn ``dst segment -> next hop port``  (distance
  vector with split horizon), so membership crossing the router is
  exactly what builds the tables.  The router graph must be loop-free
  (a tree), which :class:`~repro.routing.cluster.RoutedClusterConfig`
  validates at build time.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..membership import PeerStatus
from ..micropacket import BROADCAST, MicroPacket
from ..ring import FlowControlConfig
from ..ring.flow_control import InsertionController
from ..sim import Counter
from ..transport import Channel, GlobalAddress
from ..transport.messaging import _Reassembly

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import AmpNetCluster
    from ..node import AmpNode

__all__ = ["RouterConfig", "SegmentRouter"]

#: Remembered completed crossings (dedup of late duplicate fragments).
_COMPLETED_CACHE = 4096


@dataclass(frozen=True)
class RouterConfig:
    """One router and the segments it joins."""

    #: segment ids this router holds a port on (>= 2, distinct)
    segments: Tuple[int, ...]
    #: bounded egress queue depth per port, in messages
    egress_capacity: int = 64
    #: max unconfirmed re-originations in flight per port
    egress_window: int = 4
    #: route/liveness advertisement period; None = derived from the
    #: largest attached segment's tour estimate
    advertise_period_ns: Optional[int] = None

    def __post_init__(self) -> None:
        segs = tuple(self.segments)
        object.__setattr__(self, "segments", segs)
        if len(segs) < 2:
            raise ValueError("a router joins at least two segments")
        if len(set(segs)) != len(segs):
            raise ValueError("router attached twice to one segment")
        if self.egress_capacity < 1:
            raise ValueError("egress capacity must be >= 1")
        if self.egress_window < 1:
            raise ValueError("egress window must be >= 1")


@dataclass
class _Crossing:
    """One reassembled message waiting in an egress queue."""

    origin: GlobalAddress
    dst: GlobalAddress
    payload: bytes
    channel: int


@dataclass
class _Route:
    """A learned (not directly attached) destination segment."""

    via: int      # port segment id the advertisement arrived on
    metric: int   # hops to the destination segment
    router: int   # advertising router id (freshness tie-break)


class RouterPort:
    """The router's attachment to one segment."""

    def __init__(
        self,
        router: "SegmentRouter",
        segment_id: int,
        cluster: "AmpNetCluster",
        gateway: "AmpNode",
    ):
        self.router = router
        self.segment_id = segment_id
        self.cluster = cluster
        self.gateway = gateway
        cfg = router.config
        self.queue: Deque[_Crossing] = deque()
        # Egress pacing: the ring's own insertion-control algebra, fed
        # with the egress queue depth instead of a transit buffer.
        self.controller = InsertionController(
            FlowControlConfig(
                transit_capacity=cfg.egress_capacity,
                window_override=cfg.egress_window,
                hi_watermark=max(2, cfg.egress_capacity // 4),
            )
        )
        self.controller.ring_installed(2)  # window comes from the override
        self._pump_timer_armed = False

    # ------------------------------------------------------------- egress
    def enqueue(self, crossing: _Crossing) -> bool:
        """Queue a crossing for re-origination; False when full (drop)."""
        if len(self.queue) >= self.router.config.egress_capacity:
            return False
        self.queue.append(crossing)
        self.controller.observe_transit_depth(len(self.queue))
        self.pump()
        return True

    def pump(self) -> None:
        """Drain as much of the queue as window + pacing allow.

        A crossing whose *final* destination is not currently rostered
        on this segment is parked (head-of-line): re-originating it
        would complete a tour of a ring the destination is not on, and
        tour-as-ack would then count an undelivered message as done.
        Parking preserves the no-data-loss story across partitions —
        the queue drains when the destination re-rosters (ring-up hook)
        or on the retry timer.
        """
        sim = self.router.sim
        now = sim.now
        controller = self.controller
        parked = False
        while self.queue and controller.may_insert(now):
            crossing = self.queue[0]
            if not self._deliverable(crossing):
                parked = True
                self.router.counters.incr("egress_parked")
                break
            self.queue.popleft()
            controller.inserted(now)
            handle = self.gateway.messenger.send_global(
                crossing.dst,
                crossing.payload,
                crossing.channel,
                origin=crossing.origin,
            )
            handle.delivered.callbacks.append(self._confirmed)
            self.router.counters.incr("egress_tx")
        depth = len(self.queue)
        controller.observe_transit_depth(depth)
        if depth and not self._pump_timer_armed:
            wake_at = controller.earliest_insert()
            if parked:
                # Destination unreachable right now: poll a few tours out
                # (the ring-up listener usually wakes the queue sooner).
                self._arm_pump_timer(self.retry_ns)
            elif wake_at > now and not controller.window_full():
                # Pacing gap: wake when it ends (confirm callbacks cover
                # the window-full case).
                self._arm_pump_timer(wake_at - now)

    def _deliverable(self, crossing: _Crossing) -> bool:
        if crossing.dst[0] != self.segment_id:
            return True  # bound for a next-hop router, not a ring member
        dst_node = crossing.dst[1]
        if dst_node == BROADCAST:
            return True
        roster = self.gateway.roster
        return roster is not None and dst_node in roster.members

    @property
    def retry_ns(self) -> int:
        return max(10 * self.cluster.tour_estimate_ns, 50_000)

    def _arm_pump_timer(self, delay_ns: int) -> None:
        self._pump_timer_armed = True
        self.router.sim.call_in(max(delay_ns, 1), self._pump_timer)

    def _pump_timer(self) -> None:
        self._pump_timer_armed = False
        self.pump()

    def _confirmed(self, _event) -> None:
        self.controller.tour_completed()
        self.pump()

    # ------------------------------------------------------------ queries
    @property
    def backlog(self) -> int:
        return len(self.queue)


class SegmentRouter:
    """Joins ring segments into one routed cluster (slide 15's "R")."""

    def __init__(self, router_id: int, config: RouterConfig):
        self.router_id = router_id
        self.config = config
        self.name = f"router-{router_id}"
        self.ports: Dict[int, RouterPort] = {}
        #: learned routes: destination segment -> _Route (attached
        #: segments are implicit metric-0 routes through their port)
        self.table: Dict[int, _Route] = {}
        #: gossip/roster liveness per *remote* segment, as advertised
        self.remote_live: Dict[int, Set[int]] = {}
        self.counters = Counter()
        self.sim = None  # bound at first attach
        self.tracer = None
        self._reassembly: Dict[Tuple[int, int, int], _Reassembly] = {}
        self._completed: "OrderedDict[Tuple[int, int, int], None]" = OrderedDict()
        self._started = False

    # ------------------------------------------------------------- wiring
    def attach(
        self, segment_id: int, cluster: "AmpNetCluster", gateway_id: int
    ) -> RouterPort:
        """Plug a port into ``segment_id`` via member node ``gateway_id``."""
        if self._started:
            raise ValueError("attach before start()")
        if segment_id in self.ports:
            raise ValueError(f"segment {segment_id} already attached")
        if segment_id not in self.config.segments:
            raise ValueError(f"segment {segment_id} not in this router's config")
        gateway = cluster.nodes[gateway_id]
        port = RouterPort(self, segment_id, cluster, gateway)
        self.ports[segment_id] = port
        self.sim = cluster.sim
        self.tracer = cluster.tracer
        return port

    def start(self) -> None:
        """Install capture taps and handlers; begin advertising."""
        missing = set(self.config.segments) - set(self.ports)
        if missing:
            raise ValueError(f"unattached segments {sorted(missing)}")
        self._started = True
        for port in self.ports.values():
            gw = port.gateway
            gw.mac.capture = self._make_capture(port)
            gw.messenger.on_message(Channel.ROUTING, self._make_ad_rx(port))
            # A new roster may restore a parked crossing's destination.
            gw.ring_up_listeners.append(lambda roster, p=port: p.pump())
            if gw.membership is not None:
                gw.membership.transition_listeners.append(
                    lambda state, p=port: self._on_gossip_transition(p, state)
                )
        self.sim.call_in(self.advertise_period_ns, self._advertise_tick)
        self.tracer.record(
            self.sim.now, "routing", self.name,
            event="start", ports=tuple(sorted(self.ports)),
        )

    @property
    def advertise_period_ns(self) -> int:
        if self.config.advertise_period_ns is not None:
            return self.config.advertise_period_ns
        tour = max(p.cluster.tour_estimate_ns for p in self.ports.values())
        return max(50 * tour, 200_000)

    # ----------------------------------------------------------- liveness
    def live_in_segment(self, segment_id: int) -> Set[int]:
        """Live node ids behind ``segment_id`` as this router knows them.

        Attached segments answer from the gateway's gossip view (or the
        roster when the cluster runs no membership); remote segments
        answer from the last advertisement that crossed the router.
        """
        port = self.ports.get(segment_id)
        if port is None:
            return set(self.remote_live.get(segment_id, ()))
        gw = port.gateway
        if gw.membership is not None:
            return {
                nid for nid, st in gw.membership.view.states.items()
                if st.status != PeerStatus.DEAD
            }
        roster = port.cluster.current_roster()
        return set(roster.members) if roster is not None else set()

    def considers_live(self, addr: GlobalAddress) -> bool:
        return addr[1] in self.live_in_segment(addr[0])

    def _on_gossip_transition(self, port: RouterPort, state) -> None:
        # The verdict itself lives in the gateway's view; counting it
        # here keeps an auditable record of gossip feeding the router.
        self.counters.incr("gossip_transitions_seen")

    # ------------------------------------------------------------ ingress
    def _make_capture(self, port: RouterPort):
        segment_id = port.segment_id

        def capture(pkt: MicroPacket, frame) -> None:
            self._ingest(port, segment_id, pkt)

        return capture

    def _ingest(self, port: RouterPort, segment_id: int, pkt: MicroPacket) -> None:
        dma = pkt.dma
        if dma is None or dma.src_segment is None:  # pragma: no cover
            return  # not a routed fragment; nothing to ferry
        self.counters.incr("fragments_captured")
        key = (segment_id, pkt.src, dma.transfer_id)
        if key in self._completed:
            self.counters.incr("duplicate_fragments")
            return
        state = self._reassembly.get(key)
        if state is None:
            state = self._reassembly[key] = _Reassembly()
        result = state.add(dma.offset, pkt.payload, dma.last, pkt.channel)
        if result is None:
            return
        del self._reassembly[key]
        self._completed[key] = None
        if len(self._completed) > _COMPLETED_CACHE:
            self._completed.popitem(last=False)
        self.counters.incr("messages_captured")
        self._forward(
            ingress=segment_id,
            origin=(dma.src_segment, dma.src_node),
            dst=(dma.dst_segment, pkt.dst),
            payload=result,
            channel=state.channel,
        )

    # --------------------------------------------------------- forwarding
    #: _egress_for verdict: this crossing belongs to another router on
    #: the ingress ring (its route does not point back out the ingress
    #: port).  Declining is normal operation, not a loss.
    _NOT_OURS = -1

    def _forward(
        self,
        ingress: int,
        origin: GlobalAddress,
        dst: GlobalAddress,
        payload: bytes,
        channel: int,
    ) -> None:
        egress = self._egress_for(ingress, dst[0])
        if egress == self._NOT_OURS:
            # Split horizon: a router nearer the destination (on this
            # same ring) forwards this one.  Every router on a shared
            # ring captures every routed frame, so declines are routine
            # and must never read as data-plane drops.
            self.counters.incr("split_horizon_declines")
            return
        if egress is None:
            self.counters.incr("unroutable_drop")
            self.tracer.record(
                self.sim.now, "routing", self.name,
                event="unroutable", dst=dst, ingress=ingress,
            )
            return
        port = self.ports[egress]
        if not port.enqueue(_Crossing(origin, dst, payload, channel)):
            self.counters.incr("egress_overflow_drop")
            self.tracer.record(
                self.sim.now, "routing", self.name,
                event="egress_overflow", dst=dst, egress=egress,
            )

    def _egress_for(self, ingress: int, dst_segment: int) -> Optional[int]:
        """Next-hop port for ``dst_segment``.

        Returns the egress port's segment id; ``_NOT_OURS`` when the
        route points back out the ingress port (another router on that
        ring serves the crossing — the split-horizon half of loop
        freedom); ``None`` when no route exists at all.
        """
        if dst_segment in self.ports:
            return dst_segment if dst_segment != ingress else self._NOT_OURS
        route = self.table.get(dst_segment)
        if route is None:
            return None
        if route.via == ingress:
            return self._NOT_OURS
        return route.via

    # ----------------------------------------------------- advertisements
    def _advertise_tick(self) -> None:
        for port in self.ports.values():
            if port.gateway.failed or not port.gateway.ring_up:
                continue
            payload = self._encode_ad(port)
            if payload is None:
                continue
            port.gateway.messenger.send(BROADCAST, payload, Channel.ROUTING)
            self.counters.incr("ads_tx")
        self.sim.call_in(self.advertise_period_ns, self._advertise_tick)

    def _encode_ad(self, out_port: RouterPort) -> Optional[bytes]:
        """Reachability advertisement for one segment (split horizon)."""
        entries: List[Tuple[int, int, Set[int]]] = []
        for seg, port in self.ports.items():
            if seg == out_port.segment_id:
                continue
            entries.append((seg, 0, self.live_in_segment(seg)))
        for seg, route in self.table.items():
            if route.via == out_port.segment_id:
                continue  # learned from there; do not echo it back
            entries.append((seg, route.metric, self.live_in_segment(seg)))
        if not entries:
            return None
        out = bytearray([self.router_id & 0xFF, len(entries)])
        for seg, metric, live in entries:
            live_ids = sorted(live)[:255]
            out += bytes([seg, metric, len(live_ids)])
            out += bytes(live_ids)
        return bytes(out)

    @staticmethod
    def _decode_ad(payload: bytes) -> Tuple[int, List[Tuple[int, int, Set[int]]]]:
        router_id, n_entries = payload[0], payload[1]
        entries: List[Tuple[int, int, Set[int]]] = []
        pos = 2
        for _ in range(n_entries):
            seg, metric, n_live = payload[pos], payload[pos + 1], payload[pos + 2]
            pos += 3
            live = set(payload[pos : pos + n_live])
            pos += n_live
            entries.append((seg, metric, live))
        return router_id, entries

    def _make_ad_rx(self, port: RouterPort):
        def on_ad(src, payload: bytes, channel: int) -> None:
            self._on_advertisement(port, src, payload)

        return on_ad

    def _on_advertisement(self, port: RouterPort, src, payload: bytes) -> None:
        try:
            router_id, entries = self._decode_ad(payload)
        except IndexError:
            self.counters.incr("ads_malformed")
            return
        if router_id == self.router_id:
            return  # our own broadcast touring back is not news
        self.counters.incr("ads_rx")
        ingress = port.segment_id
        for seg, metric, live in entries:
            if seg in self.ports:
                continue  # directly attached beats any advertisement
            cost = metric + 1
            route = self.table.get(seg)
            # Take the route when it is new, strictly better, or a
            # refresh from the router we already route through (whose
            # metric may legitimately move either way).
            is_refresh = (
                route is not None
                and route.via == ingress
                and route.router == router_id
            )
            if route is None or cost < route.metric or is_refresh:
                self.table[seg] = _Route(via=ingress, metric=cost, router=router_id)
                self.remote_live[seg] = set(live)
                if route is None:
                    self.counters.incr("routes_learned")
                    self.tracer.record(
                        self.sim.now, "routing", self.name,
                        event="route_learned", segment=seg,
                        via=ingress, metric=cost,
                    )

    # ------------------------------------------------------------ queries
    def backlog(self) -> Dict[int, int]:
        """Egress queue depth per attached segment (observability)."""
        return {seg: port.backlog for seg, port in self.ports.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SegmentRouter {self.router_id} ports={sorted(self.ports)} "
            f"routes={sorted(self.table)}>"
        )
