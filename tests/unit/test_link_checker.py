"""The docs link checker: catches dead links, blesses live ones."""

import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
CHECKER = REPO / "tools" / "check_links.py"


def run(*args):
    return subprocess.run(
        [sys.executable, str(CHECKER), *map(str, args)],
        capture_output=True, text=True,
    )


def test_repo_docs_are_link_clean():
    result = run(REPO / "README.md", REPO / "docs", REPO / "examples" / "README.md")
    assert result.returncode == 0, result.stderr


def test_dead_file_link_fails(tmp_path):
    (tmp_path / "a.md").write_text("see [b](missing.md)\n")
    result = run(tmp_path)
    assert result.returncode == 1
    assert "dead link -> missing.md" in result.stderr


def test_missing_anchor_fails(tmp_path):
    (tmp_path / "a.md").write_text("# Only Heading\n[x](a.md#other-heading)\n")
    result = run(tmp_path)
    assert result.returncode == 1
    assert "missing anchor" in result.stderr


def test_good_anchor_and_external_links_pass(tmp_path):
    (tmp_path / "a.md").write_text(
        "# My Heading: nice!\n"
        "[self](#my-heading-nice)\n"
        "[other](b.md#sub-part)\n"
        "[ext](https://example.com/x)\n"
        "```\n[not a link](nowhere.md)\n```\n"
    )
    (tmp_path / "b.md").write_text("## Sub part\n")
    result = run(tmp_path)
    assert result.returncode == 0, result.stderr
