"""Network-centric services with control groups (slide 12):
AmpSubscribe, AmpFiles, AmpThreads, AmpIP."""

from .amp_files import AmpFiles, FileError
from .amp_ip import AmpIP, DatagramSocket
from .amp_subscribe import AmpSubscribe
from .amp_threads import AmpThreads, RemoteCallError
from .router import InterSegmentRouter, SegmentEndpoint

__all__ = [
    "AmpFiles",
    "AmpIP",
    "AmpSubscribe",
    "AmpThreads",
    "DatagramSocket",
    "FileError",
    "InterSegmentRouter",
    "RemoteCallError",
    "SegmentEndpoint",
]
