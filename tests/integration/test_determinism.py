"""Determinism regression: same seed => identical timeline, bit for bit.

The whole experimental method of this repo rests on the kernel's
determinism contract (integer clock, FIFO tie-breaks, named seeded
streams).  This test drives a *full* 8-node cluster — gossip membership
on, scripted faults firing, every subsystem tracing — twice with the
same seed and asserts the two tracer timelines are identical, then once
more with a different seed and asserts they diverge (the membership
layer draws jitter and partner choices from the seeded streams, so a
different master seed must produce a different gossip timeline).
"""

from repro import AmpNetCluster, ClusterConfig
from repro.faults import FaultSchedule


def run_scenario(seed: int):
    cluster = AmpNetCluster(
        config=ClusterConfig(
            n_nodes=8, n_switches=2, seed=seed, membership=True,
        )
    )
    cluster.start()
    cluster.run_until_ring_up()
    tour = cluster.tour_estimate_ns
    now = cluster.sim.now
    sched = (
        FaultSchedule()
        .crash_node(now + 40 * tour, 5)
        .cut_link(now + 300 * tour, 2, 0)
        .recover_node(now + 600 * tour, 5)
    )
    sched.arm(cluster)
    cluster.run(until=now + 1200 * tour)
    return [
        (r.time, r.category, r.source, tuple(sorted(r.data.items())))
        for r in cluster.tracer.records
    ]


def test_same_seed_same_timeline():
    first = run_scenario(seed=13)
    second = run_scenario(seed=13)
    assert len(first) > 200  # the scenario really exercised the stack
    assert first == second


def test_different_seed_diverges():
    assert run_scenario(seed=13) != run_scenario(seed=14)
