"""AmpNet switches (slides 14-15).

A switch is a port-mapped crossconnect.  In normal operation it forwards
ring traffic according to a *ring map* installed at roster commit: each
ingress port has exactly one egress port, so the logical ring threads
through the switch as a sequence of point-to-point hops.

ROSTERING MicroPackets are handled differently ("packets are forwarded
according to rostering rules", slide 16): the switch floods them out of
every live port except the ingress, with duplicate suppression keyed on
the rostering header, which is what lets the modified flooding algorithm
explore the entire surviving topology in one tour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from ..micropacket import MicroPacketType
from ..rostering.wire import flood_key
from ..sim import NULL_TRACER, Callback, Counter, Simulator, Tracer
from .constants import SWITCH_LATENCY_NS
from .frame import Frame
from .link import Fiber
from .port import Port

__all__ = ["Switch"]

#: Remembered flood keys before the oldest is evicted.
_FLOOD_CACHE_SIZE = 4096

#: Plain-int mirror for the per-frame type test.
_ROSTERING = int(MicroPacketType.ROSTERING)


class Switch:
    """A crossconnect with ``n_ports`` duplex optical ports."""

    def __init__(
        self,
        sim: Simulator,
        switch_id: int,
        n_ports: int,
        latency_ns: int = SWITCH_LATENCY_NS,
        tracer: Optional[Tracer] = None,
    ):
        if n_ports <= 0:
            raise ValueError("switch needs at least one port")
        self.sim = sim
        self.switch_id = switch_id
        self.name = f"switch-{switch_id}"
        self.latency_ns = latency_ns
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.ports: List[Port] = [
            Port(sim, f"{self.name}.p{i}") for i in range(n_ports)
        ]
        #: port object -> index, so per-frame forwarding skips list.index
        self._port_index: Dict[Port, int] = {
            port: i for i, port in enumerate(self.ports)
        }
        for port in self.ports:
            port.set_handlers(on_frame=self._on_frame)
        #: ingress port index -> egress port index for ring traffic
        self.ring_map: Dict[int, int] = {}
        self.failed = False
        self.attached_fibers: List[Fiber] = []
        self.counters = Counter()
        self._flood_seen: "OrderedDict[bytes, None]" = OrderedDict()

    # ------------------------------------------------------------- wiring
    def attach_fiber(self, fiber: Fiber) -> None:
        self.attached_fibers.append(fiber)

    def port_index(self, port: Port) -> int:
        return self._port_index[port]

    # ------------------------------------------------------ configuration
    def configure_ring(self, mapping: Dict[int, int]) -> None:
        """Install the ring crossconnect (ingress -> egress port index)."""
        for src, dst in mapping.items():
            if not (0 <= src < len(self.ports) and 0 <= dst < len(self.ports)):
                raise ValueError(f"ring map entry {src}->{dst} out of range")
        self.ring_map = dict(mapping)

    def clear_ring(self) -> None:
        self.ring_map = {}

    # ------------------------------------------------------------- faults
    def fail(self) -> None:
        """Power loss: every attached fibre goes dark from this side."""
        if self.failed:
            return
        self.failed = True
        self.ring_map = {}
        for fiber in self.attached_fibers:
            fiber.endpoint_dark()

    def repair(self) -> None:
        if not self.failed:
            return
        self.failed = False
        for fiber in self.attached_fibers:
            fiber.endpoint_lit()

    # ---------------------------------------------------------- forwarding
    def _on_frame(self, frame: Frame, port: Port) -> None:
        if self.failed:
            return
        if frame.packet.ptype == _ROSTERING:
            self._flood(frame, port)
        else:
            self._switch(frame, port)

    def _switch(self, frame: Frame, port: Port) -> None:
        ingress = self._port_index[port]
        egress = self.ring_map.get(ingress)
        if egress is None:
            self.counters.incr("no_route_drop")
            self.tracer.record(
                self.sim.now, "switch_drop", self.name,
                ingress=ingress, packet=frame.packet.describe(),
            )
            return
        out = self.ports[egress]
        # Direct kernel post: one slim entry per forwarded frame (see the
        # _post contract in sim/kernel.py).
        sim = self.sim
        sim._post(sim._now + self.latency_ns, Callback(out.send, (frame,)))
        self.counters.incr("forwarded")

    def _flood(self, frame: Frame, port: Port) -> None:
        key = flood_key(frame.packet.payload)
        if key in self._flood_seen:
            self.counters.incr("flood_duplicate")
            return
        self._flood_seen[key] = None
        if len(self._flood_seen) > _FLOOD_CACHE_SIZE:
            self._flood_seen.popitem(last=False)
        ingress = self._port_index[port]
        fanout = 0
        for idx, out in enumerate(self.ports):
            if idx == ingress or not out.carrier_up:
                continue
            self.sim.call_in(self.latency_ns, out.send, frame)
            fanout += 1
        self.counters.incr("flooded", fanout)
        self.tracer.record(
            self.sim.now, "switch_flood", self.name,
            ingress=ingress, fanout=fanout, key=key.hex(),
        )

    def reset_flood_cache(self) -> None:
        """Forget flood keys (used between rostering rounds in tests)."""
        self._flood_seen.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "FAILED" if self.failed else "ok"
        return f"<Switch {self.switch_id} {state} ports={len(self.ports)}>"
