"""Declarative scenario engine: spec, runner, and the named library.

A :class:`ScenarioSpec` is plain data — topology, workload mix,
tour-relative fault storyline, membership flags, invariants — and the
:class:`ScenarioRunner` turns it into a seeded, replayable experiment
whose timeline folds into a digest (the golden-trace regression
contract).  Topologies come in two shapes: a single ring
(``TopologySpec(n_nodes=..., n_switches=...)``) or a router-joined
multi-ring cluster (``TopologySpec(segments=[...], routers=[...])``,
see :mod:`repro.routing`), which is how the library scales past the
255-node single-ring ceiling (``two_ring_256``, ``four_ring_512``).
The authoring guide lives in ``docs/scenarios.md``.

Quickstart::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario(get_scenario("slide7_mixed"))
    assert result.ok, result.failures()
    print(result.trace_digest)

Or from the shell::

    python -m repro.scenarios list
    python -m repro.scenarios run slide7_mixed --seed 7 --json out.json
"""

from .library import SCENARIOS, get_scenario, scenario_names
from .runner import (
    InvariantResult,
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
    trace_digest,
)
from .spec import (
    CacheSpec,
    FaultSpec,
    RouterSpec,
    ScenarioSpec,
    SegmentSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "SCENARIOS",
    "CacheSpec",
    "FaultSpec",
    "InvariantResult",
    "RouterSpec",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "SegmentSpec",
    "TopologySpec",
    "WorkloadSpec",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "trace_digest",
]
