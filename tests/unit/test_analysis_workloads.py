"""Unit tests for the analysis/report helpers and workload stats."""

import math

import pytest

from repro.analysis import fmt_ns, fmt_rate, render_series, render_table
from repro.workloads import StreamStats


# ------------------------------------------------------------------ tables
def test_render_table_alignment_and_content():
    text = render_table("Title", ["A", "Long header"], [[1, "x"], [22, "yy"]])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "Long header" in lines[2]
    assert lines[3].count("+") == 1
    # Columns are aligned: every data row has the separator at the same spot.
    sep_at = lines[2].index("|")
    assert all(line[sep_at] == "|" for line in lines[4:])


def test_render_table_widens_for_long_cells():
    text = render_table("T", ["c"], [["wide-cell-content"]])
    header_line = text.splitlines()[2]
    assert len(header_line) >= len("wide-cell-content")


def test_render_series_is_two_column_table():
    text = render_series("S", "x", "y", [(1, 2), (3, 4)])
    assert "x" in text and "y" in text and "3" in text


# ----------------------------------------------------------------- formats
@pytest.mark.parametrize("ns,expect", [
    (500, "500 ns"),
    (1_500, "1.5 us"),
    (2_500_000, "2.50 ms"),
    (3_000_000_000, "3.00 s"),
])
def test_fmt_ns_units(ns, expect):
    assert fmt_ns(ns) == expect


def test_fmt_ns_nan():
    assert fmt_ns(float("nan")) == "n/a"


def test_fmt_rate_gbits():
    assert fmt_rate(0.85) == "0.850 Gbit/s"


# ------------------------------------------------------------- stream stats
def test_stream_stats_goodput():
    s = StreamStats("s")
    s.bytes_delivered = 1000
    assert s.goodput_bits_per_ns(8_000) == pytest.approx(1.0)
    assert s.goodput_bits_per_ns(0) == 0.0
