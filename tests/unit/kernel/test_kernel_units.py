"""Unit tests for AmpDK pieces: election, assimilation policy, ledger."""

import pytest

from repro.hostapi import SequenceLedger
from repro.kernel import AssimilationPolicy, ControlGroup, ControlGroupConfig
from repro.rostering import Roster


# ------------------------------------------------------------ election
class _StubNode:
    """Just enough of AmpNode for ControlGroup's constructor."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.ring_up_listeners = []
        self.ring_down_listeners = []
        self.sim = None
        self.cache = None
        self.tracer = None


def elect(members, qualification, roster_members):
    group = ControlGroup.__new__(ControlGroup)  # election is pure
    group.config = ControlGroupConfig(
        name="t", members=members, qualification=qualification
    )
    roster = Roster(1, tuple(roster_members),
                    tuple([0] * len(roster_members)) if len(roster_members) > 1 else ())
    return ControlGroup.elect(group, roster)


def test_elect_highest_qualification():
    assert elect([0, 1, 2], {0: 1, 1: 9, 2: 5}, [0, 1, 2]) == 1


def test_elect_ties_break_to_lowest_id():
    assert elect([0, 1, 2], {}, [0, 1, 2]) == 0
    assert elect([2, 3], {2: 5, 3: 5}, [2, 3]) == 2


def test_elect_ignores_dead_members():
    assert elect([0, 1, 2], {0: 9, 1: 5}, [1, 2]) == 1


def test_elect_none_when_no_member_alive():
    assert elect([0, 1], {}, [4, 5]) is None


def test_elect_nonmember_rosters_dont_count():
    # Node 7 is rostered but not a group member.
    assert elect([0, 1], {1: 3}, [1, 7]) == 1


# ------------------------------------------------------- assimilation policy
def test_policy_admits_equal_and_newer():
    p = AssimilationPolicy(version=(1, 0), min_version=(1, 0))
    assert p.admissible((1, 0))
    assert p.admissible((1, 5))
    assert p.admissible((2, 0))


def test_policy_rejects_older():
    p = AssimilationPolicy(min_version=(1, 0))
    assert not p.admissible((0, 9))


def test_policy_minor_version_ordering():
    p = AssimilationPolicy(min_version=(1, 2))
    assert not p.admissible((1, 1))
    assert p.admissible((1, 2))


# ------------------------------------------------------------------- ledger
def test_ledger_accepts_clean_sequence():
    ledger = SequenceLedger()
    for s in range(1, 6):
        ledger.ack(s, node_id=0)
    ledger.verify_no_loss_no_fork()
    assert ledger.last_acked == 5


def test_ledger_allows_gap_across_failover():
    ledger = SequenceLedger()
    ledger.ack(1, node_id=0)
    ledger.ack(2, node_id=0)
    ledger.ack(4, node_id=1)  # unit 3 died with node 0: legal
    ledger.verify_no_loss_no_fork()


def test_ledger_rejects_gap_within_one_primary():
    ledger = SequenceLedger()
    ledger.ack(1, node_id=0)
    ledger.ack(3, node_id=0)
    with pytest.raises(AssertionError):
        ledger.verify_no_loss_no_fork()


def test_ledger_rejects_duplicates_and_regressions():
    ledger = SequenceLedger()
    ledger.ack(1, node_id=0)
    ledger.ack(1, node_id=1)
    with pytest.raises(AssertionError):
        ledger.verify_no_loss_no_fork()
    ledger2 = SequenceLedger()
    ledger2.ack(5, node_id=0)
    ledger2.ack(4, node_id=1)
    with pytest.raises(AssertionError):
        ledger2.verify_no_loss_no_fork()


def test_ledger_empty_is_valid():
    SequenceLedger().verify_no_loss_no_fork()
    assert SequenceLedger().last_acked == 0
