"""T1 (slide 4): the MicroPacket type table.

Regenerates the table from the implementation's registry, extended with
measured wire sizes, and benchmarks the serialization hot path.
"""

from repro.analysis import render_table
from repro.micropacket import (
    BROADCAST,
    DmaControl,
    MicroPacket,
    MicroPacketType,
    TYPE_REGISTRY,
    frame_wire_bits,
    pack,
    unpack,
)

import harness


def sample_packet(ptype: MicroPacketType) -> MicroPacket:
    if ptype == MicroPacketType.DMA:
        return MicroPacket(
            ptype=ptype, src=1, dst=2, payload=b"z" * 64,
            dma=DmaControl(channel=0, offset=0),
        )
    return MicroPacket(ptype=ptype, src=1, dst=BROADCAST, payload=b"12345678")


def build_rows():
    rows = []
    for ptype, info in TYPE_REGISTRY.items():
        pkt = sample_packet(ptype)
        rows.append(
            (
                info.name,
                info.length,
                "Yes" if info.mandatory else "No",
                f"{pkt.wire_bytes} B",
                f"{frame_wire_bits(pkt.wire_bytes)} bits",
            )
        )
    return rows


def test_t1_micropacket_type_table(benchmark, publish, publish_json):
    rows = build_rows()

    # Slide-4 ground truth.
    assert [r[:3] for r in rows] == [
        ("Rostering", "Fixed", "Yes"),
        ("Data", "Fixed", "Yes"),
        ("DMA", "Variable", "Yes"),
        ("Interrupt", "Fixed", "Yes"),
        ("Diagnostic", "Fixed", "Yes"),
        ("D64 Atomic", "Fixed", "No"),
    ]
    # Fixed cells are 12 bytes on the wire; the max variable cell is 76.
    assert all(r[3] == "12 B" for r in rows if r[1] == "Fixed")
    assert rows[2][3] == "76 B"

    pkt = sample_packet(MicroPacketType.DATA)

    def serialize_roundtrip():
        return unpack(pack(pkt))

    result = benchmark(serialize_roundtrip)
    assert result == pkt.with_seq(pkt.seq)

    publish(
        "T1",
        render_table(
            "T1 (slide 4): MicroPacket types",
            ["MicroPacket", "Length", "Mandatory", "Wire bytes", "Frame bits"],
            rows,
        ),
    )
    publish_json(
        harness.bench_payload(
            exp="T1",
            title="MicroPacket type table with measured wire sizes",
            params={"types": len(rows)},
            columns=["type", "length", "mandatory", "wire_bytes", "frame_bits"],
            rows=[
                [info.name, info.length, info.mandatory,
                 sample_packet(ptype).wire_bytes,
                 frame_wire_bits(sample_packet(ptype).wire_bytes)]
                for ptype, info in TYPE_REGISTRY.items()
            ],
            metrics={
                "fixed_cell_wire_bytes": 12,
                "max_variable_wire_bytes": max(
                    sample_packet(p).wire_bytes for p in TYPE_REGISTRY
                ),
            },
            notes="Regenerated from the implementation's TYPE_REGISTRY; "
                  "wire sizes measured from packed sample packets.",
        )
    )
