"""P2: the cost of crossing a segment router.

Two 16-node rings joined by one :class:`~repro.routing.SegmentRouter`.
The same reliable message stream runs four times — staying on its home
ring vs crossing the router, at single-cell (8 B) and fragmented
(512 B) sizes — so the table isolates exactly what a crossing adds:
capture off the ingress ring, store-and-forward reassembly, and a
second ring insertion paced by the router's egress flow control.

All latency numbers are *simulated* nanoseconds from a seeded run, so
the emission is deterministic and ``benchmarks/diff_results.py`` holds
it to the strict tolerance across commits.
"""

from repro.analysis import fmt_ns, render_table
from repro.cluster import ClusterConfig
from repro.routing import RoutedCluster, RoutedClusterConfig, RouterConfig
from repro.workloads import MessageStream

import harness

N_NODES = 16          # user nodes per segment
COUNT = 40            # messages per stream
CHANNEL = 13
SIZES = (8, 512)      # single cell; 8-fragment message


def build_cluster() -> RoutedCluster:
    cluster = RoutedCluster(
        RoutedClusterConfig(
            segments=[ClusterConfig(n_nodes=N_NODES, n_switches=2)
                      for _ in range(2)],
            routers=[RouterConfig(segments=(0, 1))],
            seed=7,
        )
    )
    cluster.start()
    cluster.run_until_ring_up()
    return cluster


def run_stream(cluster: RoutedCluster, dst, size: int, name: str):
    """One reliable stream to ``dst``; returns its finished stats."""
    tour = cluster.tour_estimate_ns
    # Keep the offered load below the drain rate (a 512 B message is
    # eight fragments at ~2 insertions per tour), so the table measures
    # the router's store-and-forward premium, not self-queueing.
    interval = 2 * tour if size <= 8 else 30 * tour
    stream = MessageStream(
        cluster, src=(0, 1), dst=dst,
        interval_ns=interval, count=COUNT, channel=CHANNEL,
        name=name, reliable=True,
        size_fn=(None if size <= 8 else (lambda _seq: size)),
    )
    deadline = cluster.sim.now + 4000 * tour
    while stream.stats.delivered < COUNT and cluster.sim.now < deadline:
        cluster.run(until=cluster.sim.now + 50 * tour)
    stream.close()
    return stream.stats


def run_experiment():
    cluster = build_cluster()
    rows = []
    stats_by_scope = {}
    for size in SIZES:
        for scope, dst in (("local", (0, 9)), ("crossed", (1, 9))):
            stats = run_stream(cluster, dst, size, f"p2-{scope}-{size}")
            stats_by_scope[(scope, size)] = stats
            rows.append([
                scope, size, stats.offered, stats.delivered,
                round(stats.latency.mean(), 1),
                round(stats.latency.percentile(95), 1),
            ])
    router = cluster.routers[0]
    return cluster, router, rows, stats_by_scope


def test_p2_routed_throughput(benchmark, publish, publish_json):
    cluster, router, rows, stats = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    # Every stream fully delivered; nothing dropped anywhere.
    assert all(row[3] == COUNT for row in rows)
    assert cluster.router_drop_count() == 0
    # The router really carried the crossing streams (both sizes).
    assert router.counters["messages_captured"] == 2 * COUNT
    # Crossing costs more than staying local, at every size — the
    # qualitative shape this bench pins.
    for size in SIZES:
        local = stats[("local", size)].latency.mean()
        crossed = stats[("crossed", size)].latency.mean()
        assert crossed > local

    columns = ["Scope", "Bytes", "Offered", "Delivered",
               "Mean ns", "p95 ns"]
    crossing_factor = {
        size: round(
            stats[("crossed", size)].latency.mean()
            / stats[("local", size)].latency.mean(), 2,
        )
        for size in SIZES
    }
    text = render_table(
        "P2: routed vs local reliable delivery (2x16-node segments)",
        columns, rows,
    ) + (
        f"\nCrossing factor (mean crossed / mean local): "
        f"{crossing_factor[8]}x at 8 B, {crossing_factor[512]}x at 512 B"
        f"\nRouter: {router.counters['fragments_captured']} fragments "
        f"captured, egress backlog peaked per flow control"
    )
    publish("P2", text)
    publish_json(
        harness.bench_payload(
            exp="P2",
            title="Routed vs local reliable delivery across a segment router",
            params={
                "n_segments": 2,
                "nodes_per_segment": N_NODES,
                "count_per_stream": COUNT,
                "sizes_bytes": list(SIZES),
                "seed": 7,
            },
            columns=columns,
            rows=rows,
            metrics={
                "crossing_factor_8B": crossing_factor[8],
                "crossing_factor_512B": crossing_factor[512],
                "router_messages_captured": router.counters["messages_captured"],
                "router_fragments_captured": router.counters["fragments_captured"],
                "router_egress_tx": router.counters["egress_tx"],
                "router_drops": cluster.router_drop_count(),
            },
            notes="Same reliable stream on its home ring vs across the "
                  "router at 8 B and 512 B; latency in simulated ns "
                  "(deterministic). The crossing factor is the router's "
                  "store-and-forward premium.",
        )
    )
