"""F6 (slides 14-15): dual- vs quad-redundant segment survivability.

Monte-Carlo over random link/switch failures: how large a logical ring
can rostering still construct?  Quad redundancy keeps the full ring
through far deeper damage than dual — the reason slide 14's network is
drawn with four switches.
"""

import random

from repro.analysis import render_table
from repro.rostering import compute_roster
from repro.sweep import pool_map

import harness

N_NODES = 6
TRIALS = 300
FAILURE_GRID = (0, 1, 2, 3, 4, 6, 8, 10)


def surviving_attachment(n_switches: int, n_failures: int, rng: random.Random):
    """Random damage: each failure kills a random link or (1 in 6) a switch."""
    attachment = {sw: set(range(N_NODES)) for sw in range(n_switches)}
    for _ in range(n_failures):
        if rng.random() < 1 / 6:
            sw = rng.randrange(n_switches)
            attachment[sw] = set()
        else:
            sw = rng.randrange(n_switches)
            node = rng.randrange(N_NODES)
            attachment[sw].discard(node)
    return attachment


def mean_ring_size(n_switches: int, n_failures: int, seed: int) -> float:
    rng = random.Random(seed)
    total = 0
    for _ in range(TRIALS):
        attachment = surviving_attachment(n_switches, n_failures, rng)
        roster = compute_roster(1, attachment)
        total += roster.size if roster else 0
    return total / TRIALS


def measure_failures(failures: int):
    """One grid point: mean ring size at this damage depth, dual + quad."""
    dual = mean_ring_size(2, failures, seed=failures)
    quad = mean_ring_size(4, failures, seed=failures)
    return failures, round(dual, 2), round(quad, 2)


def run_experiment():
    # Each damage depth is an independent seeded Monte-Carlo, so the
    # grid fans out through the sweep pool (serial unless
    # REPRO_SWEEP_WORKERS asks otherwise; order is grid order always).
    return pool_map(measure_failures, [(f,) for f in FAILURE_GRID])


def test_f6_redundancy_survivability(benchmark, publish, publish_json):
    rows = run_experiment()

    # Time the core roster computation on a damaged quad segment.
    rng = random.Random(42)
    attachment = surviving_attachment(4, 6, rng)
    benchmark(lambda: compute_roster(1, attachment))

    # Shape: quad >= dual everywhere; gap widens with damage depth;
    # both start at the full ring.
    dual0, quad0 = float(rows[0][1]), float(rows[0][2])
    assert dual0 == quad0 == N_NODES
    for failures, dual, quad in rows:
        assert float(quad) >= float(dual) - 1e-9, failures
    deep = rows[-3:]
    assert any(float(q) - float(d) > 0.5 for _f, d, q in deep), (
        "quad redundancy should clearly win under deep damage"
    )

    publish(
        "F6",
        render_table(
            "F6 (slides 14-15): mean constructible ring size vs random failures"
            f" ({TRIALS} trials, {N_NODES} nodes)",
            ["Failures injected", "Dual-redundant (2 switches)",
             "Quad-redundant (4 switches)"],
            rows,
        ),
    )
    publish_json(
        harness.bench_payload(
            exp="F6",
            title="Redundancy survivability: mean ring size vs random failures",
            params={"n_nodes": N_NODES, "trials": TRIALS,
                    "failure_grid": list(FAILURE_GRID)},
            columns=["failures", "dual_mean_ring", "quad_mean_ring"],
            rows=[list(row) for row in rows],
            metrics={
                "deep_damage_gap": round(
                    max(q - d for _f, d, q in rows[-3:]), 2
                ),
            },
            notes="Seeded Monte-Carlo (seed = failure count), so rows are "
                  "deterministic; quad redundancy holds the ring together "
                  "through damage that collapses dual.",
        )
    )
