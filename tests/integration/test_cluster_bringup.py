"""Integration: cluster self-organization, ring traffic, self-healing."""

import pytest

from repro import AmpNetCluster
from repro.micropacket import BROADCAST, MicroPacket, MicroPacketType


def make_cluster(n_nodes=6, n_switches=4, **kw):
    cluster = AmpNetCluster(n_nodes=n_nodes, n_switches=n_switches, **kw)
    cluster.start()
    return cluster


def data(src, dst, payload=b"payload!"):
    return MicroPacket(ptype=MicroPacketType.DATA, src=src, dst=dst, payload=payload)


# --------------------------------------------------------------- bring-up
def test_cluster_self_organizes_into_one_ring():
    cluster = make_cluster()
    t_up = cluster.run_until_ring_up()
    roster = cluster.current_roster()
    assert roster is not None
    assert set(roster.members) == set(range(6))
    assert t_up < 10 * cluster.tour_estimate_ns
    # Every node installed the identical roster.
    for node in cluster.nodes.values():
        assert node.roster == roster


def test_bringup_works_for_various_sizes():
    for n_nodes, n_switches in [(2, 1), (4, 2), (8, 4), (12, 2)]:
        cluster = make_cluster(n_nodes=n_nodes, n_switches=n_switches)
        cluster.run_until_ring_up()
        roster = cluster.current_roster()
        assert roster is not None and roster.size == n_nodes


def test_switch_maps_installed_consistently():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    roster = cluster.current_roster()
    maps = roster.switch_maps()
    for sw_id, mapping in maps.items():
        assert cluster.topology.switches[sw_id].ring_map == mapping


# ------------------------------------------------------------ ring traffic
def test_unicast_delivery_and_source_strip():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    got = []
    cluster.nodes[3].register_default(lambda pkt, fr: got.append(pkt))
    tours = []
    cluster.nodes[0].tour_complete_listeners.append(
        lambda fr: tours.append(fr) if fr.packet.ptype == MicroPacketType.DATA else None
    )
    cluster.nodes[0].send(data(0, 3))
    cluster.run(until=cluster.sim.now + 5 * cluster.tour_estimate_ns)
    assert len(got) == 1 and got[0].payload == b"payload!"
    assert len(tours) == 1


def test_broadcast_reaches_every_other_node():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    seen = {i: [] for i in range(6)}
    for i, node in cluster.nodes.items():
        node.register_default(lambda pkt, fr, i=i: seen[i].append(pkt) if pkt.ptype == MicroPacketType.DATA else None)
    cluster.nodes[2].send(data(2, BROADCAST))
    cluster.run(until=cluster.sim.now + 5 * cluster.tour_estimate_ns)
    for i in range(6):
        assert len(seen[i]) == (0 if i == 2 else 1), i


def test_many_packets_all_complete_tours():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    n = 40
    tours = []
    for i in range(4):
        cluster.nodes[i].tour_complete_listeners.append(
            lambda fr: tours.append(fr)
            if fr.packet.ptype == MicroPacketType.DATA else None
        )
    for k in range(n):
        src = k % 4
        cluster.nodes[src].send(data(src, (src + 1) % 4).with_seq(k))
    cluster.run(until=cluster.sim.now + 50 * cluster.tour_estimate_ns)
    total_tours = len(tours)
    total_drops = sum(
        cluster.nodes[i].mac.counters["transit_overflow_drop"] for i in range(4)
    )
    assert total_tours == n
    assert total_drops == 0


# ------------------------------------------------------------ self-healing
def test_link_cut_triggers_reroster_and_ring_recovers():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    roster_before = cluster.current_roster()
    # Cut the active hop of node 0.
    sw = roster_before.hop_switch_from(0)
    cluster.cut_link(0, sw)
    cluster.run_until_reroster()
    roster_after = cluster.current_roster()
    assert roster_after.round_no != roster_before.round_no
    assert set(roster_after.members) == set(range(6))  # quad redundancy
    roster_after.validate_against(cluster.topology.live_attachment())


def test_switch_failure_ring_rebuilds_on_surviving_switch():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    active_switches = set(cluster.current_roster().hop_switches)
    victim = active_switches.pop()
    cluster.fail_switch(victim)
    cluster.run_until_reroster()
    roster = cluster.current_roster()
    assert set(roster.members) == set(range(6))
    assert victim not in set(roster.hop_switches)


def test_ring_survives_all_but_one_switch():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    for victim in (0, 1, 2):
        active = set(cluster.current_roster().hop_switches)
        cluster.fail_switch(victim)
        if victim in active:
            cluster.run_until_reroster()
        else:
            cluster.run(until=cluster.sim.now + 2 * cluster.tour_estimate_ns)
            cluster.run_until_ring_up()
    roster = cluster.current_roster()
    assert set(roster.members) == set(range(6))
    assert set(roster.hop_switches) == {3}


def test_node_crash_shrinks_roster():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    cluster.crash_node(4)
    cluster.run_until_reroster()
    roster = cluster.current_roster()
    assert set(roster.members) == set(range(6)) - {4}


def test_crashed_node_reenters_after_recovery():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    cluster.crash_node(4)
    cluster.run_until_reroster()
    cluster.recover_node(4)
    cluster.run_until_reroster()
    roster = cluster.current_roster()
    assert set(roster.members) == set(range(6))
    assert cluster.nodes[4].ring_up


def test_traffic_resumes_after_heal():
    cluster = make_cluster()
    cluster.run_until_ring_up()
    sw = cluster.current_roster().hop_switch_from(2)
    cluster.cut_link(2, sw)
    cluster.run_until_reroster()
    got = []
    cluster.nodes[5].register_default(lambda pkt, fr: got.append(pkt) if pkt.ptype == MicroPacketType.DATA else None)
    cluster.nodes[2].send(data(2, 5))
    cluster.run(until=cluster.sim.now + 5 * cluster.tour_estimate_ns)
    assert len(got) == 1


def test_rostering_elapsed_close_to_two_tours():
    """Slide 16: rostering completes in ~two ring-tour times."""
    cluster = make_cluster(n_nodes=8, n_switches=2, fiber_m=2000.0)
    cluster.run_until_ring_up()
    roster = cluster.current_roster()
    cluster.cut_link(3, roster.hop_switch_from(3))
    cluster.run_until_reroster()
    recs = [
        r for r in cluster.tracer.select(category="roster_installed")
        if r.data["round"] == cluster.current_roster().round_no
    ]
    assert recs
    elapsed = max(r.data["elapsed_ns"] for r in recs)
    tour = cluster.tour_estimate_ns
    assert tour <= elapsed <= 4 * tour


def test_double_cut_heals_to_threaded_two_switch_roster():
    """Cut (node0, sw1) and (node3, sw0) on a 2-switch segment: no single
    switch reaches everyone, so the healed ring must *thread* both
    switches via bridge nodes — and the master must program a switch it
    has no direct live fibre to (regression: an over-eager control-plane
    guard once left node 3 permanently excluded)."""
    cluster = make_cluster(n_nodes=4, n_switches=2, seed=1)
    cluster.run_until_ring_up()
    cluster.cut_link(0, 1)
    cluster.cut_link(3, 0)
    cluster.run_until_reroster()
    roster = cluster.current_roster()
    assert set(roster.members) == {0, 1, 2, 3}
    assert set(roster.hop_switches) == {0, 1}  # genuinely threaded
    for node in cluster.nodes.values():
        assert node.ring_up
    roster.validate_against(cluster.topology.live_attachment())
