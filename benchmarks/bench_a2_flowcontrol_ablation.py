"""A2 (ablation): the no-drop guarantee depends on insertion flow control.

Same broadcast storm as F3, but with the insertion window and pacing
disabled: nodes stuff the ring as fast as the transmitter allows, the
finite transit buffers overflow, and frames die — demonstrating that
slide 8's guarantee is a property of the flow control, not of the ring
topology.
"""

from dataclasses import replace

from repro import AmpNetCluster, ClusterConfig, NodeConfig
from repro.analysis import render_table
from repro.ring import FlowControlConfig
from repro.workloads import AllToAllBroadcast

import harness

N_NODES = 8
CELLS = 24
#: Small transit buffers make the ablation bite quickly.
TRANSIT_CAPACITY = 12


def run_case(enabled: bool):
    flow = FlowControlConfig(
        transit_capacity=TRANSIT_CAPACITY,
        enabled=enabled,
        transit_priority=enabled,
    )
    cfg = ClusterConfig(
        n_nodes=N_NODES, n_switches=2, node=NodeConfig(flow=flow)
    )
    cluster = AmpNetCluster(config=cfg)
    cluster.start()
    cluster.run_until_ring_up()
    storm = AllToAllBroadcast(cluster, count_per_node=CELLS)
    horizon = cluster.sim.now + 4000 * cluster.tour_estimate_ns
    while not storm.complete() and cluster.sim.now < horizon:
        cluster.run(until=cluster.sim.now + 50 * cluster.tour_estimate_ns)
        if not enabled and storm.total_drops() > 0 and cluster.sim.now > horizon / 2:
            break  # the ablation has made its point
    return storm


def run_experiment():
    on = run_case(enabled=True)
    off = run_case(enabled=False)
    return on, off


def test_a2_flow_control_ablation(benchmark, publish, publish_json):
    on, off = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    assert on.total_drops() == 0
    assert on.complete()
    assert off.total_drops() > 0, "uncontrolled insertion failed to overflow"

    rows = [
        ("flow control ON (window + pacing)", on.total_delivered(),
         on.expected_deliveries(), on.total_drops()),
        ("flow control OFF (ablation)", off.total_delivered(),
         off.expected_deliveries(), off.total_drops()),
    ]
    publish(
        "A2",
        render_table(
            f"A2: broadcast storm, {N_NODES} nodes, transit buffers of "
            f"{TRANSIT_CAPACITY} frames",
            ["Configuration", "Delivered", "Expected", "Drops"],
            rows,
        )
        + "\nThe slide-8 guarantee is the flow control's doing: with it"
        "\ndisabled the same ring drops frames on transit overflow.",
    )
    publish_json(
        harness.bench_payload(
            exp="A2",
            title="Flow-control ablation: broadcast storm with pacing disabled",
            params={"n_nodes": N_NODES, "cells_per_node": CELLS,
                    "transit_capacity": TRANSIT_CAPACITY},
            columns=["configuration", "delivered", "expected", "drops"],
            rows=[
                ["flow_control_on", on.total_delivered(),
                 on.expected_deliveries(), on.total_drops()],
                ["flow_control_off", off.total_delivered(),
                 off.expected_deliveries(), off.total_drops()],
            ],
            metrics={"ablation_drops": off.total_drops()},
            notes="Identical ring + storm; only the insertion window and "
                  "pacing differ.  The zero-drop guarantee is the flow "
                  "control's property, not the topology's.",
        )
    )
