"""Unit tests for the messenger's reassembly and channel bookkeeping."""

import pytest

from repro.transport.messaging import _Reassembly
from repro.micropacket import VARIABLE_PAYLOAD_MAX
from repro.node import AmpNode
from repro.phys import build_switched
from repro.sim import Simulator
from repro.transport import Messenger


def make_messenger():
    sim = Simulator()
    topo = build_switched(sim, 2, 1)
    node = AmpNode(sim, 0, topo.ports_of(0))
    return Messenger(node), sim


# ---------------------------------------------------------------- reassembly
def test_reassembly_in_order():
    r = _Reassembly()
    assert r.add(0, b"aaaa", last=False, channel=1) is None
    assert r.add(4, b"bb", last=True, channel=1) == b"aaaabb"


def test_reassembly_out_of_order():
    r = _Reassembly()
    assert r.add(4, b"bb", last=True, channel=1) is None
    assert r.add(0, b"aaaa", last=False, channel=1) == b"aaaabb"


def test_reassembly_gap_not_delivered():
    r = _Reassembly()
    r.add(0, b"aa", last=False, channel=0)
    # Missing [2:4); last fragment supplies total length 6.
    assert r.add(4, b"cc", last=True, channel=0) is None


def test_reassembly_duplicate_fragment_idempotent():
    r = _Reassembly()
    r.add(0, b"aaaa", last=False, channel=0)
    r.add(0, b"aaaa", last=False, channel=0)  # retransmission
    assert r.add(4, b"b", last=True, channel=0) == b"aaaab"


def test_reassembly_single_fragment():
    r = _Reassembly()
    assert r.add(0, b"whole", last=True, channel=2) == b"whole"


# ---------------------------------------------------------------- messenger
def test_send_validation():
    messenger, _sim = make_messenger()
    with pytest.raises(ValueError):
        messenger.send(1, b"")
    with pytest.raises(ValueError):
        messenger.send(1, b"x", channel=16)


def test_signal_validation():
    messenger, _sim = make_messenger()
    with pytest.raises(ValueError):
        messenger.signal(1, b"nine bytes!")


def test_fragment_count_matches_payload_size():
    messenger, sim = make_messenger()
    payload = b"z" * (VARIABLE_PAYLOAD_MAX * 3 + 1)
    handle = messenger.send(1, payload)
    assert len(handle.unconfirmed) == 4
    offsets = sorted(handle.unconfirmed)
    assert offsets == [0, 64, 128, 192]
    last_pkt = handle.unconfirmed[192]
    assert last_pkt.dma.last and len(last_pkt.payload) == 1


def test_transfer_ids_wrap_without_zero():
    messenger, _sim = make_messenger()
    messenger._next_tid = 0xFFFF
    h1 = messenger.send(1, b"a")
    h2 = messenger.send(1, b"b")
    assert h1.transfer_id == 0xFFFF
    assert h2.transfer_id == 1  # wraps past 0


def test_channel_claims_are_exclusive():
    messenger, _sim = make_messenger()
    messenger.on_message(9, lambda s, d, c: None)
    with pytest.raises(ValueError):
        messenger.on_message(9, lambda s, d, c: None)
    messenger.on_signal(9, lambda s, d: None)
    with pytest.raises(ValueError):
        messenger.on_signal(9, lambda s, d: None)


def test_reset_clears_inflight_state():
    messenger, _sim = make_messenger()
    messenger.send(1, b"pending data")
    messenger.reset()
    assert not messenger._outgoing
    assert not messenger._reassembly
