"""F7 (slide 16): rostering completes in two ring-tour times — 1 to 2 ms
depending on the number of nodes and the length of the fibre.

Sweep node count and fibre length; after a link cut, measure trigger ->
certified-ring time at every node and compare with the two-tour model.
Machine-room fibre heals in tens of microseconds; campus/km-scale fibre
lands in the paper's millisecond band.

Topologies come from declarative ``ScenarioSpec``s (the measurement loop
itself stays hand-driven: it times a protocol phase, not a workload).
"""

from repro.analysis import fmt_ns, render_table
from repro.scenarios import ScenarioSpec, TopologySpec

import harness

SWEEP = [
    (4, 50.0),
    (8, 50.0),
    (16, 50.0),
    (8, 1_000.0),
    (16, 1_000.0),
    (8, 5_000.0),
    (16, 5_000.0),
]


def sweep_spec(n_nodes: int, fiber_m: float) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"f7_roster_{n_nodes}n_{fiber_m:g}m",
        description="link-cut rostering-time measurement topology",
        topology=TopologySpec(n_nodes=n_nodes, n_switches=2, fiber_m=fiber_m),
    )


def measure_once(n_nodes: int, fiber_m: float):
    spec = sweep_spec(n_nodes, fiber_m)
    cluster = spec.build_cluster()
    cluster.start()
    cluster.run_until_ring_up()
    roster = cluster.current_roster()
    cut_time = cluster.sim.now
    cluster.cut_link(1, roster.hop_switch_from(1))
    cluster.run_until_reroster()
    # Slide 16 times the *algorithm*: it "starts automatically whenever a
    # failure is detected", so the clock runs from the hardware trigger
    # (carrier loss after debounce) to the certified new ring.
    triggers = [
        r for r in cluster.tracer.select(category="roster_trigger")
        if r.time > cut_time and "carrier" in r.data["reason"]
    ]
    assert triggers, "carrier loss never triggered rostering"
    detected_at = min(r.time for r in triggers)
    horizon = cluster.sim.now + 40 * cluster.tour_estimate_ns
    certs = []
    while cluster.sim.now < horizon and not certs:
        certs = [
            r for r in cluster.tracer.select(category="ring_certified")
            if r.time > cut_time
        ]
        cluster.run(until=cluster.sim.now + cluster.tour_estimate_ns)
    assert certs, "healed ring was never certified"
    elapsed = certs[0].time - detected_at
    return elapsed, cluster.tour_estimate_ns, spec


def run_experiment():
    measurements = []
    for n_nodes, fiber_m in SWEEP:
        elapsed, tour, spec = measure_once(n_nodes, fiber_m)
        measurements.append(
            {
                "n_nodes": n_nodes,
                "fiber_m": fiber_m,
                "tour_ns": tour,
                "elapsed_ns": elapsed,
                "tours": elapsed / tour,
                "spec": spec,
            }
        )
    return measurements


def test_f7_rostering_two_tour_times(benchmark, publish, publish_json):
    measurements = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    ratios = [m["tours"] for m in measurements]
    # The slide-16 claim: completion in ~two ring-tour times.  Allow
    # [1.0, 3.5] for detection latency and commit/cert flight overhead.
    assert all(1.0 <= ratio <= 3.5 for ratio in ratios), ratios

    # Absolute band: km-scale fibre lands in the millisecond range the
    # slide quotes; machine-room fibre is far faster.
    by_cfg = {(m["n_nodes"], m["fiber_m"]): m for m in measurements}
    assert "us" in fmt_ns(by_cfg[(8, 50.0)]["elapsed_ns"])
    assert "ms" in fmt_ns(by_cfg[(16, 5_000.0)]["elapsed_ns"])

    table_rows = [
        (
            m["n_nodes"],
            f"{m['fiber_m']:g}",
            fmt_ns(m["tour_ns"]),
            fmt_ns(m["elapsed_ns"]),
            f"{m['tours']:.2f}",
        )
        for m in measurements
    ]
    publish(
        "F7",
        render_table(
            "F7 (slide 16): rostering time vs nodes and fibre length",
            ["Nodes", "Fibre (m)", "Ring tour", "Rostering (trigger->certified)",
             "Tours"],
            table_rows,
        )
        + "\nShape: linear in node count and fibre length; ~2 ring tours;"
        "\nkm-scale fibre lands in the 1-2 ms band the slide quotes.",
    )
    publish_json(
        harness.bench_payload(
            exp="F7",
            title="Rostering time (trigger -> certified) vs nodes and fibre",
            params={"sweep": [list(cfg) for cfg in SWEEP]},
            columns=["n_nodes", "fiber_m", "tour_ns", "elapsed_ns", "tours"],
            rows=[
                [m["n_nodes"], m["fiber_m"], m["tour_ns"], m["elapsed_ns"],
                 round(m["tours"], 3)]
                for m in measurements
            ],
            metrics={
                "max_tours": round(max(ratios), 3),
                "min_tours": round(min(ratios), 3),
            },
            scenarios=[m["spec"].to_dict() for m in measurements],
            notes="~2 ring-tour completion at every scale; km fibre in the "
                  "paper's millisecond band.",
        )
    )
