"""F5 (slide 10): network semaphores resolve write conflicts.

Four nodes increment a shared counter in the network cache.  Unprotected
read-modify-writes race and lose updates (last-writer-wins erases
concurrent increments); wrapping the RMW in a network semaphore makes
every increment land.
"""

from repro import AmpNetCluster, ClusterConfig
from repro.analysis import render_table
from repro.cache import RegionSpec

import harness

REGION = RegionSpec(region_id=3, name="f5", n_records=2, record_size=8)
WORKERS = 4
INCREMENTS = 12


def read_counter(cache) -> int:
    ok, data, _v = cache.try_read("f5", 0)
    return int.from_bytes(data[:8], "little") if ok else 0


def run_case(with_semaphore: bool) -> int:
    cluster = AmpNetCluster(
        config=ClusterConfig(n_nodes=WORKERS, n_switches=2, regions=[REGION])
    )
    cluster.start()
    cluster.run_until_ring_up()
    sim = cluster.sim

    def worker(node_id):
        node = cluster.nodes[node_id]
        for _ in range(INCREMENTS):
            if with_semaphore:
                ok = yield from node.sems.acquire(0)
                assert ok
            value = read_counter(node.cache)
            node.cache.write("f5", 0, (value + 1).to_bytes(8, "little"))
            handle = node.replicator.last_handle
            yield handle.delivered  # propagate before anyone else reads
            if with_semaphore:
                node.sems.release(0)
            yield sim.timeout(1_000)

    for nid in range(WORKERS):
        sim.process(worker(nid))
    cluster.run(until=sim.now + 6_000 * cluster.tour_estimate_ns)
    finals = {read_counter(n.cache) for n in cluster.nodes.values()}
    assert len(finals) == 1, "replicas diverged"
    return finals.pop()


def run_experiment():
    locked = run_case(with_semaphore=True)
    unlocked = run_case(with_semaphore=False)
    return locked, unlocked


def test_f5_network_semaphores(benchmark, publish, publish_json):
    locked, unlocked = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    expected = WORKERS * INCREMENTS

    assert locked == expected, "semaphore-protected increments lost updates"
    assert unlocked < expected, "unprotected RMW surprisingly lost nothing"

    rows = [
        ("network semaphore (slide 10)", expected, locked, expected - locked),
        ("unprotected RMW", expected, unlocked, expected - unlocked),
    ]
    publish(
        "F5",
        render_table(
            "F5 (slide 10): contended counter, 4 nodes x 12 increments",
            ["Discipline", "Expected", "Final value", "Lost updates"],
            rows,
        ),
    )
    publish_json(
        harness.bench_payload(
            exp="F5",
            title="Network semaphores: contended counter, lost updates",
            params={"workers": WORKERS, "increments": INCREMENTS},
            columns=["discipline", "expected", "final_value", "lost_updates"],
            rows=[list(row) for row in rows],
            metrics={
                "semaphore_lost_updates": expected - locked,
                "unprotected_lost_updates": expected - unlocked,
            },
            notes="Deterministic seeded run: the semaphore-protected "
                  "counter loses nothing, the unprotected RMW races.",
        )
    )
