"""Gossip-based membership & SWIM-style failure detection.

Decentralized liveness for AmpNet: every node runs a
:class:`GossipProtocol` that pushes its :class:`PeerView` digest to a few
random partners each period and direct-probes one peer SWIM-style.
Verdicts (ALIVE → SUSPECT → DEAD, guarded by incarnation numbers) spread
epidemically in O(log N) periods with no coordinator — the scalable
alternative to waiting for the centralized rostering flood to notice.

Enable per cluster::

    from repro import AmpNetCluster, ClusterConfig
    from repro.membership import MembershipConfig

    cluster = AmpNetCluster(config=ClusterConfig(
        n_nodes=16, n_switches=2, membership=True,
        membership_cfg=MembershipConfig(fanout=2),
    ))

On router-joined clusters (:mod:`repro.routing`) gossip stays
per-segment, but each verdict also fires the gateway's
``transition_listeners`` — an observation hook segment routers tap to
audit gossip crossing their ports; the liveness they advertise is read
from the gateway's :class:`PeerView` when each advertisement is built.

See :mod:`repro.membership.state` for the merge semilattice and
``examples/gossip_membership.py`` for the full tour.
"""

from .gossip import GossipProtocol, MembershipConfig
from .state import PeerState, PeerStatus, PeerView, merge_states, state_key
from .wire import decode_digest, encode_digest

__all__ = [
    "GossipProtocol",
    "MembershipConfig",
    "PeerState",
    "PeerStatus",
    "PeerView",
    "decode_digest",
    "encode_digest",
    "merge_states",
    "state_key",
]
