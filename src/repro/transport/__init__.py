"""Reliable messaging and signalling over the ring MAC.

The :class:`Messenger` turns the ring's tour-as-ack primitive into
reliable, fragmenting message delivery (plus single-cell INTERRUPT
signals) on sixteen channels; on router-joined clusters it also resolves
``(segment, node)`` :data:`GlobalAddress` destinations (see
:mod:`repro.routing`).
"""

from .messaging import Channel, GlobalAddress, MessageHandle, Messenger

__all__ = ["Channel", "GlobalAddress", "MessageHandle", "Messenger"]
