"""repro — full-system reproduction of AmpNet (Apon & Wilbur, IPPS 2003).

AmpNet is a highly available cluster interconnection network: a gigabit
register-insertion ring over Fibre Channel physics, with a replicated
*network cache* at every node, a flooding *rostering* algorithm that
rebuilds the largest possible logical ring within two ring-tour times of
any failure, and millisecond application failover with no data loss.

Quick start::

    from repro import AmpNetCluster

    cluster = AmpNetCluster(n_nodes=6, n_switches=4)
    cluster.start()
    cluster.run_until_ring_up()

Membership & failure detection
------------------------------

Two liveness mechanisms coexist, answering different questions:

* **Roster-driven** (always on): the rostering flood plus the AmpDK
  heartbeat backstop decide *who is on the ring right now*.  It is
  authoritative for the data plane, but every failure costs a global,
  coordinated re-roster.
* **Gossip-driven** (``ClusterConfig(membership=True)``): every node
  runs a :mod:`repro.membership` endpoint — periodic digest push to a
  few random partners plus a SWIM direct probe, with
  ALIVE -> SUSPECT -> DEAD verdicts guarded by incarnation numbers.
  O(fanout) messages per node per period, O(log N) periods to converge,
  no coordinator; it expresses states rostering cannot (suspected,
  partitioned-but-alive, rejoined under a fresh incarnation).

Use the roster for "can I send to X now", gossip for scalable health
knowledge (churn experiments, partition detection, placement).  With
``membership_liveness=True`` the roster consumes gossip verdicts and
will not re-admit a node the epidemic layer has declared dead.  See
``examples/README.md`` for the full guidance and
``benchmarks/bench_f10_gossip_convergence.py`` for the numbers.

Scaling past 255 nodes
----------------------

One ring tops out at 255 addressable nodes (8-bit MicroPacket address
space; id 255 is broadcast).  :mod:`repro.routing` joins several rings
through segment routers into one cluster addressed by
``(segment, node)`` pairs::

    from repro import RoutedCluster, RoutedClusterConfig, RouterConfig
    from repro import ClusterConfig

    cluster = RoutedCluster(RoutedClusterConfig(
        segments=[ClusterConfig(n_nodes=128, n_switches=2)
                  for _ in range(2)],
        routers=[RouterConfig(segments=(0, 1))],
    ))

See ``docs/architecture.md`` for the module map and layer diagrams.
"""

from .cluster import AmpNetCluster, ClusterConfig
from .membership import GossipProtocol, MembershipConfig
from .node import AmpNode, NodeConfig
from .routing import (
    RoutedCluster,
    RoutedClusterConfig,
    RouterConfig,
    SegmentRouter,
)

__version__ = "1.2.0"

__all__ = [
    "AmpNetCluster",
    "AmpNode",
    "ClusterConfig",
    "GossipProtocol",
    "MembershipConfig",
    "NodeConfig",
    "RoutedCluster",
    "RoutedClusterConfig",
    "RouterConfig",
    "SegmentRouter",
    "__version__",
]
