"""Roster computation tests: largest-ring construction over cliques."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rostering import Roster, RosterError, compute_roster


# ----------------------------------------------------------------- dataclass
def test_roster_basic_accessors():
    r = Roster(1, (0, 2, 5), (0, 0, 0))
    assert r.size == 3
    assert 2 in r and 1 not in r
    assert r.successor(0) == 2 and r.successor(5) == 0
    assert r.predecessor(0) == 5
    assert r.hop_switch_from(5) == 0


def test_roster_validation():
    with pytest.raises(RosterError):
        Roster(1, (0, 0), (1, 1))  # duplicate member
    with pytest.raises(RosterError):
        Roster(1, (0, 1), (1,))  # hop count mismatch
    with pytest.raises(RosterError):
        Roster(1, (), ())
    with pytest.raises(RosterError):
        Roster(1, (3,), (0,))  # singleton with hops


def test_roster_switch_maps():
    r = Roster(1, (0, 1, 2), (0, 0, 1))
    maps = r.switch_maps()
    assert maps[0] == {0: 1, 1: 2}
    assert maps[1] == {2: 0}


def test_roster_index_of_missing_raises():
    r = Roster(1, (0, 1), (0, 0))
    with pytest.raises(RosterError):
        r.index_of(9)


def test_validate_against_attachment():
    r = Roster(1, (0, 1), (0, 0))
    r.validate_against({0: {0, 1}})
    with pytest.raises(RosterError):
        r.validate_against({0: {0}})


# ----------------------------------------------------------- single switch
def test_all_nodes_one_switch():
    roster = compute_roster(1, {0: {0, 1, 2, 3}})
    assert roster is not None
    assert roster.members == (0, 1, 2, 3)
    assert roster.hop_switches == (0, 0, 0, 0)
    roster.validate_against({0: {0, 1, 2, 3}})


def test_best_single_switch_wins():
    attachment = {0: {0, 1}, 1: {0, 1, 2, 3}, 2: {4, 5}}
    roster = compute_roster(1, attachment)
    assert roster is not None and set(roster.members) == {0, 1, 2, 3}
    assert set(roster.hop_switches) == {1}


def test_empty_attachment_gives_none():
    assert compute_roster(1, {}) is None
    assert compute_roster(1, {0: set()}) is None


def test_single_node_singleton_roster():
    roster = compute_roster(1, {2: {7}})
    assert roster is not None
    assert roster.members == (7,) and roster.hop_switches == ()


def test_two_nodes_same_switch():
    roster = compute_roster(1, {1: {3, 4}})
    assert roster.members == (3, 4)
    assert roster.hop_switches == (1, 1)
    maps = roster.switch_maps()
    assert maps[1] == {3: 4, 4: 3}


def test_isolated_nodes_fall_back_to_singleton():
    # Two nodes on different switches with no shared switch: no 2-ring.
    roster = compute_roster(1, {0: {1}, 1: {2}})
    assert roster.size == 1
    assert roster.members == (1,)  # deterministic: lowest id


# ------------------------------------------------------------ multi switch
def test_bridged_ring_covers_both_switches():
    # Switch 0: {0,1,2}; switch 1: {1, 2, 3, 4}: bridges exist (1 and 2).
    attachment = {0: {0, 1, 2}, 1: {1, 2, 3, 4}}
    roster = compute_roster(1, attachment)
    assert roster is not None
    assert set(roster.members) == {0, 1, 2, 3, 4}
    roster.validate_against(attachment)


def test_bridge_requires_two_distinct_nodes():
    # Only one shared node: a cycle would visit it twice => not allowed.
    attachment = {0: {0, 1, 2}, 1: {2, 3, 4}}
    roster = compute_roster(1, attachment)
    assert roster is not None
    assert roster.size == 3  # best single switch
    roster.validate_against(attachment)


def test_three_switch_chain():
    attachment = {
        0: {0, 1, 2, 3},
        1: {3, 4, 5, 6},
        2: {6, 7, 0},
    }
    roster = compute_roster(1, attachment)
    assert roster is not None
    assert set(roster.members) == set(range(8))
    roster.validate_against(attachment)


def test_hub_switch_reused_twice_in_chain():
    # s1 and s2 only connect through s0 (two disjoint bridge pairs).
    attachment = {
        0: {0, 1, 2, 3},
        1: {0, 1, 4, 5},
        2: {2, 3, 6, 7},
    }
    roster = compute_roster(1, attachment)
    assert roster is not None
    assert set(roster.members) == set(range(8))
    roster.validate_against(attachment)


def test_deterministic_output():
    attachment = {0: {0, 1, 2}, 1: {1, 2, 3}, 2: {2, 3, 4}}
    a = compute_roster(1, attachment)
    b = compute_roster(1, {k: set(v) for k, v in attachment.items()})
    assert a == b


@st.composite
def attachments(draw):
    n_sw = draw(st.integers(1, 4))
    n_nodes = draw(st.integers(1, 10))
    att = {}
    for sw in range(n_sw):
        members = draw(
            st.sets(st.integers(0, n_nodes - 1), min_size=0, max_size=n_nodes)
        )
        att[sw] = members
    return att


@given(attachments())
@settings(max_examples=150, deadline=None)
def test_computed_roster_is_always_physically_valid(attachment):
    roster = compute_roster(1, attachment)
    if roster is None:
        assert all(not v for v in attachment.values())
        return
    # Valid: every hop realizable, members unique, all members attached.
    roster.validate_against(attachment)
    everyone = set().union(*attachment.values()) if attachment else set()
    assert set(roster.members) <= everyone


@given(attachments())
@settings(max_examples=150, deadline=None)
def test_roster_at_least_best_single_switch(attachment):
    roster = compute_roster(1, attachment)
    best_single = max((len(v) for v in attachment.values()), default=0)
    if roster is None:
        assert best_single == 0
    else:
        assert roster.size >= min(best_single, max(best_single, 1))


def test_quad_redundant_survives_three_switch_failures():
    # Slide 14 topology with only one switch left: full ring via it.
    full = {3: set(range(6))}
    roster = compute_roster(1, full)
    assert roster.size == 6
    assert set(roster.hop_switches) == {3}
