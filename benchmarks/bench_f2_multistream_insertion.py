"""F2 (slide 7): multiple concurrent data streams inserted per node.

Four nodes run the slide's exact scenario — two applications sending
files, two sending messages, all simultaneously — and every stream makes
progress with zero ring drops.
"""

from repro import AmpNetCluster, ClusterConfig
from repro.analysis import fmt_ns, render_table, ring_drop_count
from repro.workloads import run_slide7_mixed_workload


def run_experiment():
    cluster = AmpNetCluster(config=ClusterConfig(n_nodes=4, n_switches=2))
    cluster.start()
    cluster.run_until_ring_up()
    stats = run_slide7_mixed_workload(cluster, duration_tours=800)
    span = cluster.sim.now
    rows = [
        (
            s.name,
            s.offered,
            s.delivered,
            s.bytes_delivered,
            fmt_ns(s.latency.mean()),
        )
        for s in stats
    ]
    return rows, stats, ring_drop_count(cluster)


def test_f2_multistream_insertion(benchmark, publish):
    (rows, stats, drops) = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Every concurrent stream made progress and nothing was dropped.
    assert all(s.delivered > 0 for s in stats)
    assert drops == 0
    # Message streams fully drained within the horizon.
    msg = [s for s in stats if s.name.startswith("msg")]
    assert all(s.delivered == s.offered for s in msg)

    publish(
        "F2",
        render_table(
            "F2 (slide 7): concurrent per-node streams (files + messages)",
            ["Stream", "Offered", "Delivered", "Bytes", "Mean latency"],
            rows,
        )
        + f"\nRing drops during the run: {drops}",
    )
