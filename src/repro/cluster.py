"""AmpNetCluster: the high-level facade assembling the whole system.

A cluster owns the simulator, the redundant physical topology, every
:class:`~repro.node.AmpNode` with its full software stack, and the fault
injection handles.  Most examples and every benchmark start here::

    from repro import AmpNetCluster

    cluster = AmpNetCluster(n_nodes=6, n_switches=4, fiber_m=50.0)
    cluster.start()
    cluster.run_until_ring_up()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .cache import (
    CacheReplicator,
    NetworkCache,
    RefreshService,
    RegionSpec,
    SemaphoreService,
)
from .kernel import (
    AmpDK,
    AmpDKConfig,
    AssimilationTracker,
    ControlGroup,
    ControlGroupConfig,
    GroupApp,
)
from .node import AmpNode, NodeConfig
from .phys import PhysicalTopology, build_switched, ring_tour_estimate_ns
from .ring import FlowControlConfig
from .hostapi import AmpDC
from .services import AmpFiles, AmpIP, AmpSubscribe, AmpThreads
from .rostering import Roster, RosterConfig
from .sim import SimulationError, Simulator, Tracer
from .transport import Messenger

__all__ = ["AmpNetCluster", "ClusterConfig"]


@dataclass
class ClusterConfig:
    """Cluster-wide knobs with sensible slide-14 defaults."""

    n_nodes: int = 6
    n_switches: int = 4
    fiber_m: float = 50.0
    seed: int = 0
    trace: bool = True
    node: NodeConfig = field(default_factory=NodeConfig)
    ampdk: AmpDKConfig = field(default_factory=AmpDKConfig)
    #: Cache regions every node defines at power-on (beyond built-ins).
    regions: List[RegionSpec] = field(default_factory=list)
    #: Override the computed report window (ns); None = one tour estimate.
    report_window_ns: Optional[int] = None


class AmpNetCluster:
    """Builds and runs a complete AmpNet segment."""

    def __init__(
        self,
        n_nodes: int = 6,
        n_switches: int = 4,
        fiber_m: float = 50.0,
        seed: int = 0,
        config: Optional[ClusterConfig] = None,
        sim: Optional[Simulator] = None,
    ):
        if config is None:
            config = ClusterConfig(
                n_nodes=n_nodes, n_switches=n_switches, fiber_m=fiber_m, seed=seed
            )
        self.config = config
        # Segments joined by a router (slide 15) share one simulator.
        self.sim = sim if sim is not None else Simulator(seed=config.seed)
        self.tracer = Tracer(enabled=config.trace)
        self.topology: PhysicalTopology = build_switched(
            self.sim, config.n_nodes, config.n_switches, config.fiber_m,
            tracer=self.tracer,
        )
        self.tour_estimate_ns = ring_tour_estimate_ns(
            config.n_nodes, config.fiber_m
        )
        window = config.report_window_ns or self.tour_estimate_ns

        self.nodes: Dict[int, AmpNode] = {}
        self.kernels: Dict[int, AmpDK] = {}
        self.control_groups: Dict[str, Dict[int, ControlGroup]] = {}
        ampdk_cfg = replace(config.ampdk, tour_estimate_ns=self.tour_estimate_ns)
        for node_id in self.topology.node_ids:
            node_cfg = replace(
                config.node,
                roster=replace(config.node.roster, report_window_ns=window),
            )
            node = AmpNode(
                self.sim, node_id, self.topology.ports_of(node_id),
                node_cfg, self.tracer,
            )
            node.agent.switch_configurator = self._configure_switches
            self.nodes[node_id] = node
            self.kernels[node_id] = AmpDK(node, ampdk_cfg)
            self._build_stack(node)

    def _build_stack(self, node: AmpNode) -> None:
        """Attach messenger, cache replica and services to a node."""
        node.messenger = Messenger(node)
        node.cache = NetworkCache(self.sim, node.node_id)
        for spec in self.config.regions:
            node.cache.define_region(spec, announce=False)
        node.replicator = CacheReplicator(node, node.cache, node.messenger)
        node.refresh = RefreshService(node, node.cache, node.messenger)
        node.sems = SemaphoreService(node, node.cache)
        node.amp_dc = AmpDC(node, node.messenger)
        node.subscribe = AmpSubscribe(node)
        node.files = AmpFiles(node)
        node.threads = AmpThreads(node)
        node.ip = AmpIP(node)
        node.assimilation = AssimilationTracker(node)
        # First boot: every replica is identically empty, hence warm.
        node.refresh.warm = True

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Boot every node (they self-organize into a ring)."""
        for node in self.nodes.values():
            node.boot()

    def run(self, until=None):
        return self.sim.run(until=until)

    def run_until_ring_up(
        self,
        timeout_ns: Optional[int] = None,
        beyond_round: Optional[int] = None,
    ) -> int:
        """Advance until every live node is ring-operational; returns now.

        ``beyond_round`` waits for a roster *newer* than the given round —
        use it after injecting a fault so the call does not return on the
        pre-fault ring that is still momentarily standing.

        Raises ``SimulationError`` if the horizon passes first.
        """
        # Default horizon covers both slow-fibre topologies (many tours)
        # and the fixed millisecond heartbeat backstop that node-crash
        # detection rides on.
        default_horizon = max(200 * self.tour_estimate_ns, 20_000_000)
        horizon = self.sim.now + (timeout_ns or default_horizon)
        step = max(self.tour_estimate_ns // 4, 1_000)
        while self.sim.now < horizon:
            if self.all_rings_up(beyond_round=beyond_round):
                return self.sim.now
            self.sim.run(until=min(self.sim.now + step, horizon))
        if self.all_rings_up(beyond_round=beyond_round):
            return self.sim.now
        raise SimulationError("ring did not come up before the horizon")

    def run_until_reroster(self, timeout_ns: Optional[int] = None) -> int:
        """Advance until a roster newer than the current one is installed."""
        current = self.current_roster()
        beyond = current.round_no if current is not None else None
        return self.run_until_ring_up(timeout_ns=timeout_ns, beyond_round=beyond)

    def all_rings_up(self, beyond_round: Optional[int] = None) -> bool:
        live = [n for n in self.nodes.values() if not n.failed]
        if not live:
            return False
        if not all(n.ring_up and n.roster is not None for n in live):
            return False
        rounds = {n.roster.round_no for n in live}
        if len(rounds) != 1:
            return False
        if beyond_round is not None and rounds == {beyond_round}:
            return False
        return True

    # -------------------------------------------------------- control plane
    def _configure_switches(
        self, maps: Dict[int, Dict[int, int]], roster: Roster
    ) -> None:
        """Install crossconnects for a new roster (master control path)."""
        for sw in self.topology.switches:
            if sw.failed:
                continue
            sw.configure_ring(maps.get(sw.switch_id, {}))
            sw.reset_flood_cache()

    # -------------------------------------------------------------- faults
    def crash_node(self, node_id: int) -> None:
        """Power-fail a node: software stops, lasers go dark, NIC memory
        (and with it the local cache replica) is lost."""
        node = self.nodes[node_id]
        node.crash()
        fresh = NetworkCache(self.sim, node_id)
        for spec in self.config.regions:
            fresh.define_region(spec, announce=False)
        node.cache = fresh
        node.messenger.reset()
        node.replicator.rebind(fresh)
        node.refresh.rebind(fresh)
        node.sems.rebind(fresh)
        for group in self.control_groups.values():
            member = group.get(node_id)
            if member is not None:
                member.crash_cleanup()
        self.topology.node_dark(node_id)

    def recover_node(self, node_id: int) -> None:
        """Power the node back on and have it seek assimilation."""
        self.topology.node_lit(node_id)
        node = self.nodes[node_id]
        node.recover()
        node.assimilation.mark_join_request()
        node.join_existing()

    # -------------------------------------------------------- applications
    def create_control_group(
        self,
        config: ControlGroupConfig,
        app_factory,
    ) -> Dict[int, ControlGroup]:
        """Instantiate a control group on every member node."""
        members: Dict[int, ControlGroup] = {}
        for node_id in config.members:
            members[node_id] = ControlGroup(self.nodes[node_id], config, app_factory)
        self.control_groups[config.name] = members
        return members

    def cut_link(self, node_id: int, switch_id: int) -> None:
        self.topology.cut_link(node_id, switch_id)

    def restore_link(self, node_id: int, switch_id: int) -> None:
        self.topology.restore_link(node_id, switch_id)

    def fail_switch(self, switch_id: int) -> None:
        self.topology.fail_switch(switch_id)

    def repair_switch(self, switch_id: int) -> None:
        self.topology.repair_switch(switch_id)

    # ------------------------------------------------------------- queries
    def current_roster(self) -> Optional[Roster]:
        for node in self.nodes.values():
            if not node.failed and node.roster is not None and node.ring_up:
                return node.roster
        return None

    def live_nodes(self) -> List[AmpNode]:
        return [n for n in self.nodes.values() if not n.failed]
