"""On-path caching at gateway routers.

A :class:`SegmentRouter` with an enabled
:class:`~repro.caching.CacheConfig` taps every crossing it is about to
ferry on the content channel:

* a RESPONSE passing through is remembered (the router caches what it
  carries) and forwarded unchanged;
* a WRITE passing through refreshes an already-cached entry (never
  inserts — writes are the origin's news, not evidence of popularity)
  and is forwarded unchanged;
* a REQUEST whose content id is cached is answered *locally* — the
  ingress gateway sends the RESPONSE back onto the requester's own ring
  — and not forwarded, which is the origin-offload the C1 bench
  measures.

The tap sits on the forwarding path after the spanning-tree role gate,
so exactly the router that would have ferried a crossing answers it:
blocked redundant routers never produce a second response, and clients
match responses by sequence number, never by responder address.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Counter
from .config import CacheConfig
from .store import CacheStore
from .wire import OP_REQUEST, OP_RESPONSE, OP_WRITE, decode, encode_response

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.router import RouterPort, _Crossing

__all__ = ["OnPathCache"]


class OnPathCache:
    """The router-side content tap; counters land in the router's own
    :class:`~repro.sim.Counter` under a ``cache_`` prefix (folded into
    results as ``router_cache_*`` by the existing router fold)."""

    def __init__(self, config: CacheConfig, counters: Counter):
        self.channel = config.channel
        self.store = CacheStore(config.capacity, config.eviction)
        self.counters = counters

    def serve(self, ingress_port: "RouterPort", crossing: "_Crossing") -> bool:
        """Inspect one about-to-be-ferried crossing.

        Returns True when the crossing was answered locally (the caller
        must not forward it); False to forward as usual.
        """
        if crossing.channel != self.channel:
            return False
        frame = decode(crossing.payload)
        if frame is None:
            return False
        if frame.op == OP_RESPONSE:
            if self.store.put(frame.content_id, frame.body) is not None:
                self.counters.incr("cache_evictions")
            self.counters.incr("cache_stored")
            return False
        if frame.op == OP_WRITE:
            if frame.content_id in self.store:
                self.store.put(frame.content_id, frame.body)
                self.counters.incr("cache_write_refreshes")
            return False
        if frame.op != OP_REQUEST:
            return False
        body = self.store.get(frame.content_id)
        if body is None:
            self.counters.incr("cache_misses")
            return False
        self.counters.incr("cache_hits")
        ingress_port.gateway.messenger.send_global(
            crossing.origin,
            encode_response(frame.seq, frame.content_id, body),
            crossing.channel,
        )
        return True
