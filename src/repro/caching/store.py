"""Bounded content store with deterministic LRU/LFU eviction."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from .config import EVICTION_POLICIES

__all__ = ["CacheStore"]


class CacheStore:
    """A bounded ``content id -> body`` map.

    ``lru`` evicts the least recently *touched* entry (gets and puts
    both refresh recency); ``lfu`` evicts the least frequently touched,
    with ties broken by insertion order — both disciplines are fully
    deterministic, which the replay-determinism contract requires.
    """

    def __init__(self, capacity: int, eviction: str = "lru"):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1 entry")
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        self.capacity = capacity
        self.eviction = eviction
        self._data: "OrderedDict[int, bytes]" = OrderedDict()
        #: lfu bookkeeping: content id -> (frequency, insertion order)
        self._freq: Dict[int, Tuple[int, int]] = {}
        self._inserts = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, content_id: int) -> bool:
        return content_id in self._data

    def keys(self) -> List[int]:
        return list(self._data)

    def get(self, content_id: int) -> Optional[bytes]:
        body = self._data.get(content_id)
        if body is None:
            return None
        self._touch(content_id)
        return body

    def put(self, content_id: int, body: bytes) -> Optional[int]:
        """Insert/update an entry; returns the evicted content id (if
        the bound forced one out), else None."""
        evicted: Optional[int] = None
        if content_id not in self._data and len(self._data) >= self.capacity:
            evicted = self._victim()
            del self._data[evicted]
            self._freq.pop(evicted, None)
            self.evictions += 1
        if content_id not in self._data:
            self._inserts += 1
            self._freq[content_id] = (0, self._inserts)
        self._data[content_id] = body
        self._touch(content_id)
        return evicted

    def _touch(self, content_id: int) -> None:
        self._data.move_to_end(content_id)
        freq, order = self._freq[content_id]
        self._freq[content_id] = (freq + 1, order)

    def _victim(self) -> int:
        if self.eviction == "lru":
            return next(iter(self._data))
        return min(self._data, key=lambda cid: self._freq[cid])
