"""Content-popularity request streams: stationary Zipf and trace replay.

The caching story needs skewed demand: real content workloads
concentrate most requests on a small head of the catalog, classically
modelled as a Zipf law — the rank-``k`` content drawing probability
proportional to ``1 / (k + 1) ** alpha``.  :class:`ZipfStream` samples
content ids from exactly that law, seeded through the same
named-``sim.rng``-stream discipline as :mod:`repro.workloads.stochastic`
(the draw stream is ``workload.<name>``, so two streams never perturb
each other and every run replays bit-identically under the master
seed).  :class:`TraceReplayStream` replays a recorded ``(time_ns,
content_id)`` trace instead — request instants and content ids exactly
as logged, with **no** randomness at all: it is seed-*invariant* by
design, which its property suite pins.

Both are *request/response* streams speaking the content protocol of
:mod:`repro.caching`: a request carries a sequence number and a content
id, and ``delivered`` counts the matching RESPONSE arriving back at the
**requester** — not the request reaching its destination — because with
caching in the path the responder may be a segment cache or a gateway
router rather than the addressed origin.  ``all_delivered`` therefore
reads "every request was answered", whoever answered it, and the
latency statistic is the full request -> response round trip.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import Callable, List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

from ..caching.wire import OP_RESPONSE, decode, encode_request, request_key
from ..caching.config import DEFAULT_CONTENT_CHANNEL
from .generators import MessageStream

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import AmpNetCluster

__all__ = [
    "ContentStream",
    "TraceReplayStream",
    "ZipfStream",
    "load_trace",
    "zipf_sampler",
    "zipf_weights",
]

#: ``(time_ns, content_id)`` pairs, or a path to a whitespace-separated
#: two-column trace file (``#`` comments and blank lines ignored).
Trace = Union[str, Sequence[Tuple[int, int]]]


def zipf_weights(alpha: float, catalog_size: int) -> List[float]:
    """Normalised Zipf probabilities over ranks ``0..catalog_size-1``:
    rank ``k`` gets weight proportional to ``1 / (k + 1) ** alpha``."""
    if alpha < 0:
        raise ValueError("zipf alpha must be >= 0")
    if catalog_size < 1:
        raise ValueError("catalog_size must be >= 1")
    raw = [1.0 / (k + 1) ** alpha for k in range(catalog_size)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_sampler(rng, alpha: float, catalog_size: int) -> Callable[[], int]:
    """A draw function returning Zipf-distributed ranks from ``rng`` by
    inverse-CDF lookup (binary search over cumulative weights) — one
    uniform draw per sample, so replay identity only depends on the rng
    stream, never on the catalog layout in memory."""
    cumulative = list(accumulate(zipf_weights(alpha, catalog_size)))
    cumulative[-1] = 1.0  # seal float round-off; random() < 1.0 always lands
    top = catalog_size - 1

    def draw() -> int:
        return min(top, bisect_right(cumulative, rng.random()))

    return draw


def load_trace(path: str) -> List[Tuple[int, int]]:
    """Parse a two-column ``time_ns content_id`` trace file."""
    records: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            fields = body.split()
            if len(fields) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'time_ns content_id', "
                    f"got {body!r}"
                )
            records.append((int(fields[0]), int(fields[1])))
    return records


class ContentStream(MessageStream):
    """Base request/response stream over the content protocol.

    Each offered packet is a REQUEST frame for the content id that
    :meth:`_content_for` picks; the response handler lives on the
    **source** node (responses travel back to the requester), so unlike
    the base class this stream never claims a channel on ``dst`` — the
    destination's handler is the cache/origin service itself.  Streams
    are always reliable (messenger-carried): content frames exceed one
    ring cell and must survive ring churn for ``all_delivered`` to mean
    anything.
    """

    def __init__(
        self,
        cluster: "AmpNetCluster",
        src,
        dst,
        interval_ns: int,
        count: int,
        channel: int = DEFAULT_CONTENT_CHANNEL,
        name: Optional[str] = None,
        request_bytes: int = 24,
    ):
        if src == dst:
            raise ValueError("content streams need src != dst "
                             "(the destination runs the content service)")
        if request_bytes < 0:
            raise ValueError("request_bytes must be >= 0")
        self.request_bytes = request_bytes
        #: content id of every offered request, in offer order (the
        #: property suite asserts replay identity on this)
        self.content_ids: List[int] = []
        super().__init__(
            cluster, src, dst, interval_ns=interval_ns, count=count,
            channel=channel, name=name, reliable=True,
        )

    # ------------------------------------------------------------ receive
    def _install_rx(self) -> None:
        # Responses come back to the requester: listen on src, not dst.
        self.cluster.nodes[self.src].messenger.on_message(
            self.channel, self._rx_response
        )

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.cluster.nodes[self.src].messenger.off_message(self.channel)

    def _rx_response(self, src, payload: bytes, channel: int) -> None:
        frame = decode(payload)
        if frame is None or frame.op != OP_RESPONSE:
            return
        start = self._sent_at.pop(request_key(frame.seq), None)
        if start is None:
            # Unknown or already-answered seq (duplicate response after a
            # retransmit race) — exactly-once accounting ignores it.
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += len(payload)
        self.stats.latency.add(self.cluster.sim.now - start)

    # ----------------------------------------------------------- transmit
    def _content_for(self, seq: int) -> int:
        raise NotImplementedError

    def _payload_for(self, seq: int) -> bytes:
        content_id = self._content_for(seq)
        self.content_ids.append(content_id)
        return encode_request(seq, content_id, pad_to=self.request_bytes)


class ZipfStream(ContentStream):
    """Stationary-Zipf content requests at a constant offered rate.

    Arrival instants are deterministic (every ``interval_ns``); only the
    *content id* of each request is random, drawn from the
    ``workload.<name>`` rng stream, so the skew knob ``alpha`` and the
    ``catalog_size`` fully determine the popularity law: ``alpha = 0``
    is uniform demand, larger ``alpha`` concentrates requests on the
    head of the catalog (and drives cache hit ratio up — the C1 bench's
    x-axis).
    """

    def __init__(
        self,
        cluster: "AmpNetCluster",
        src,
        dst,
        interval_ns: int,
        count: int,
        alpha: float = 0.9,
        catalog_size: int = 64,
        channel: int = DEFAULT_CONTENT_CHANNEL,
        name: Optional[str] = None,
        request_bytes: int = 24,
    ):
        self.alpha = alpha
        self.catalog_size = catalog_size
        name = name or f"zipf-{src}->{dst}.ch{channel}"
        self._rng = cluster.sim.rng.stream(f"workload.{name}")
        self._draw = zipf_sampler(self._rng, alpha, catalog_size)
        super().__init__(
            cluster, src, dst, interval_ns=interval_ns, count=count,
            channel=channel, name=name, request_bytes=request_bytes,
        )

    def _content_for(self, seq: int) -> int:
        return self._draw()


class TraceReplayStream(ContentStream):
    """Replay a recorded ``(time_ns, content_id)`` request trace.

    Times are offsets from the stream's start instant and must be
    non-decreasing; both the request instants and the content sequence
    are honoured exactly, and nothing is drawn from any rng — two runs
    under *different* seeds offer the identical request sequence (only
    delivery timing may differ through the transport).
    """

    def __init__(
        self,
        cluster: "AmpNetCluster",
        src,
        dst,
        trace: Trace,
        channel: int = DEFAULT_CONTENT_CHANNEL,
        name: Optional[str] = None,
        request_bytes: int = 24,
    ):
        if isinstance(trace, str):
            trace = load_trace(trace)
        records = [(int(t), int(cid)) for t, cid in trace]
        if not records:
            raise ValueError("trace replay needs at least one record")
        for i, (t, cid) in enumerate(records):
            if t < 0 or cid < 0:
                raise ValueError(
                    f"trace record {i}: time and content id must be >= 0"
                )
            if i and t < records[i - 1][0]:
                raise ValueError(
                    f"trace record {i}: times must be non-decreasing"
                )
        self.trace = records
        name = name or f"trace-{src}->{dst}.ch{channel}"
        super().__init__(
            cluster, src, dst, interval_ns=0, count=len(records),
            channel=channel, name=name, request_bytes=request_bytes,
        )

    def _content_for(self, seq: int) -> int:
        return self.trace[seq][1]

    def _gap_ns(self, seq: int) -> int:
        if seq + 1 >= len(self.trace):
            return 0
        return self.trace[seq + 1][0] - self.trace[seq][0]

    def _tx(self):
        # Honour the first record's offset before the base loop (which
        # only waits *between* packets).
        first = self.trace[0][0]
        if first:
            yield self.cluster.sim.timeout(first)
        yield from super()._tx()
