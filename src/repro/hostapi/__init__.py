"""Host-side APIs: AmpDC registered memory, MPI-like message passing,
and the canonical checkpointing failover application."""

from .amp_dc import AmpDC, HostRegion, RegionError
from .failover_app import APP_REGION, CheckpointedSequenceApp, SequenceLedger
from .mpi_like import MPIEndpoint, ReduceOp

__all__ = [
    "APP_REGION",
    "AmpDC",
    "CheckpointedSequenceApp",
    "HostRegion",
    "MPIEndpoint",
    "ReduceOp",
    "RegionError",
    "SequenceLedger",
]
