"""Shared machine-readable benchmark emission.

Every bench publishes two artefacts into ``benchmarks/results/``:

* the human table (``<exp>.txt``, unchanged — see conftest ``publish``);
* a schema-versioned JSON document (``<exp>.json``) that seeds the
  repo's perf trajectory: stable key order, no timestamps, fully
  reproducible from the seeded simulation, so the files are
  git-trackable and diffs show *performance* changes only.

The document shape is pinned by ``SCHEMA_VERSION`` and enforced by
:func:`validate_payload`, a dependency-free validator (CI runs it with
nothing but the standard library; the JSON-Schema mirror in
``BENCH_JSON_SCHEMA`` is for external tooling).

Run ``python benchmarks/harness.py validate results/F3.json`` to check
an emission by hand, or ``... validate --all`` for every JSON result.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

SCHEMA_VERSION = "repro-bench/1"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: JSON-Schema mirror of validate_payload, for external consumers.
BENCH_JSON_SCHEMA: Dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro benchmark result",
    "type": "object",
    "required": ["schema", "exp", "title", "params", "columns", "rows"],
    "additionalProperties": False,
    "properties": {
        "schema": {"const": SCHEMA_VERSION},
        "exp": {"type": "string", "pattern": "^[A-Za-z][A-Za-z0-9_]*$"},
        "title": {"type": "string"},
        "params": {"type": "object"},
        "columns": {"type": "array", "items": {"type": "string"}, "minItems": 1},
        "rows": {
            "type": "array",
            "items": {
                "type": "array",
                "items": {"type": ["number", "string", "boolean", "null"]},
            },
        },
        "metrics": {"type": "object"},
        "scenarios": {"type": "array", "items": {"type": "object"}},
        "notes": {"type": "string"},
    },
}


class BenchSchemaError(ValueError):
    """An emission does not conform to SCHEMA_VERSION."""


_SCALARS = (int, float, str, bool, type(None))


def bench_payload(
    exp: str,
    title: str,
    params: Dict[str, Any],
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    metrics: Optional[Dict[str, Any]] = None,
    scenarios: Optional[List[Dict[str, Any]]] = None,
    notes: str = "",
) -> Dict[str, Any]:
    """Assemble (and validate) one bench emission."""
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "exp": exp,
        "title": title,
        "params": dict(params),
        "columns": list(columns),
        "rows": [list(row) for row in rows],
    }
    if metrics:
        payload["metrics"] = dict(metrics)
    if scenarios:
        payload["scenarios"] = list(scenarios)
    if notes:
        payload["notes"] = notes
    validate_payload(payload)
    return payload


def validate_payload(payload: Any) -> None:
    """Enforce SCHEMA_VERSION with no third-party dependencies."""
    def fail(msg: str) -> None:
        raise BenchSchemaError(f"bench JSON invalid: {msg}")

    if not isinstance(payload, dict):
        fail(f"top level must be an object, got {type(payload).__name__}")
    allowed = set(BENCH_JSON_SCHEMA["properties"])
    unknown = set(payload) - allowed
    if unknown:
        fail(f"unknown keys {sorted(unknown)}")
    for key in BENCH_JSON_SCHEMA["required"]:
        if key not in payload:
            fail(f"missing required key {key!r}")
    if payload["schema"] != SCHEMA_VERSION:
        fail(f"schema {payload['schema']!r} != {SCHEMA_VERSION!r}")
    exp = payload["exp"]
    if not isinstance(exp, str) or not exp or not exp[0].isalpha() or not all(
        c.isalnum() or c == "_" for c in exp
    ):
        fail(f"exp {exp!r} must be an identifier-like string")
    if not isinstance(payload["title"], str):
        fail("title must be a string")
    if not isinstance(payload["params"], dict):
        fail("params must be an object")
    columns = payload["columns"]
    if (
        not isinstance(columns, list)
        or not columns
        or not all(isinstance(c, str) for c in columns)
    ):
        fail("columns must be a non-empty list of strings")
    rows = payload["rows"]
    if not isinstance(rows, list):
        fail("rows must be a list")
    for i, row in enumerate(rows):
        if not isinstance(row, list):
            fail(f"row {i} is not a list")
        if len(row) != len(columns):
            fail(f"row {i} has {len(row)} cells for {len(columns)} columns")
        for cell in row:
            if not isinstance(cell, _SCALARS):
                fail(f"row {i} cell {cell!r} is not a JSON scalar")
    metrics = payload.get("metrics", {})
    if not isinstance(metrics, dict):
        fail("metrics must be an object")
    scenarios = payload.get("scenarios", [])
    if not isinstance(scenarios, list) or not all(
        isinstance(s, dict) for s in scenarios
    ):
        fail("scenarios must be a list of objects")
    if not isinstance(payload.get("notes", ""), str):
        fail("notes must be a string")


def write_result(payload: Dict[str, Any],
                 results_dir: pathlib.Path = RESULTS_DIR) -> pathlib.Path:
    """Validate and persist one emission as ``<exp>.json``.

    The write is atomic: the document is staged in a sibling temp file
    and lands via ``os.replace``, so concurrent sweep workers emitting
    into one results tree — or a crash mid-write — can never leave a
    truncated JSON where a committed result belongs.  Readers see
    either the old complete document or the new complete document.
    """
    validate_payload(payload)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{payload['exp']}.json"
    tmp = results_dir / f".{payload['exp']}.json.{os.getpid()}.tmp"
    try:
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def sizes_from_env(name: str, default: Sequence[int]) -> Tuple[int, ...]:
    """Size axis for a bench grid, overridable via the environment.

    ``F10_SIZES="4, 8" pytest ...`` style overrides used to be parsed
    ad hoc per bench, crashing on stray whitespace and silently
    accepting duplicates (which double-run and double-count a grid
    row).  This is the one shared parser: comma- or whitespace-
    separated integers, tolerant of trailing commas and blank tokens,
    strict about everything that would corrupt a grid — non-integer
    tokens, non-positive sizes and duplicates all raise ``ValueError``
    naming the variable.  Unset (or all-whitespace) falls back to
    ``default``.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return tuple(default)
    tokens = [tok for tok in raw.replace(",", " ").split() if tok]
    if not tokens:
        raise ValueError(f"{name} is set but contains no sizes: {raw!r}")
    sizes: List[int] = []
    for token in tokens:
        try:
            value = int(token)
        except ValueError:
            raise ValueError(
                f"{name}: {token!r} is not an integer (in {raw!r})"
            ) from None
        if value < 1:
            raise ValueError(f"{name}: sizes must be positive, got {value}")
        if value in sizes:
            raise ValueError(
                f"{name}: duplicate size {value} (a duplicated size "
                "would double-run and double-count a grid row)"
            )
        sizes.append(value)
    return tuple(sizes)


def validate_file(path: pathlib.Path) -> None:
    with open(path) as fh:
        payload = json.load(fh)
    validate_payload(payload)


def _main(argv: List[str]) -> int:
    usage = ("usage: python benchmarks/harness.py validate "
             "(--all | PATH [PATH ...])")
    if not argv or argv[0] != "validate":
        print(usage, file=sys.stderr)
        return 2
    targets = argv[1:]
    if "--all" in targets:
        if targets != ["--all"]:
            print(usage, file=sys.stderr)
            return 2
        targets = sorted(str(p) for p in RESULTS_DIR.glob("*.json"))
        if not targets:
            print(f"no JSON results under {RESULTS_DIR}", file=sys.stderr)
            return 1
    if not targets:
        # Validating nothing must not look like success.
        print(usage, file=sys.stderr)
        return 2
    bad = 0
    for target in targets:
        try:
            validate_file(pathlib.Path(target))
        except (OSError, json.JSONDecodeError, BenchSchemaError) as exc:
            print(f"FAIL {target}: {exc}", file=sys.stderr)
            bad += 1
        else:
            print(f"ok   {target}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
