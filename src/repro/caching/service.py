"""Content services over a cluster: origin, per-segment caches, and the
deployment wrapper the scenario runner drives.

An :class:`OriginService` is the authoritative content store on one
node: it answers REQUESTs with deterministic (or previously written)
bodies and applies WRITEs.  A :class:`SegmentCache` is a bounded cache
on another node, answering the same protocol under one of three
policies:

* ``read_through`` — the cache owns the loader: concurrent misses for
  one content id coalesce into a single origin fetch, and every waiter
  is answered from the one response;
* ``cache_aside`` — the loader belongs to each request: every miss
  triggers its own origin fetch (no coalescing), modelling clients that
  populate the cache themselves after a miss, with the cache node
  standing in for the client-side loader so clients stay thin;
* ``write_behind`` — reads behave like ``read_through``, but WRITEs are
  acknowledged immediately from the cache and flushed to the origin
  lazily, in bounded batches on a timer.

Under ``read_through``/``cache_aside``, WRITEs are forwarded to the
origin synchronously (write-through) after the local update, so the
origin never serves stale content once the write is acknowledged.

Addresses follow the workload convention: plain node ids on a
single-segment cluster, ``(segment, node)`` tuples on a routed one —
the messenger resolves both.  Every service owns exactly one messenger
channel per node and releases it in ``close()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..sim import Counter
from .config import DEFAULT_CONTENT_CHANNEL, EVICTION_POLICIES
from .store import CacheStore
from .wire import (
    OP_REQUEST,
    OP_RESPONSE,
    OP_WRITE,
    OP_WRITE_ACK,
    decode,
    encode_request,
    encode_response,
    encode_write,
    encode_write_ack,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import AmpNetCluster

__all__ = [
    "CACHE_POLICIES",
    "CacheDeployment",
    "OriginService",
    "SegmentCache",
    "origin_body",
]

#: Cache policies :class:`SegmentCache` implements.
CACHE_POLICIES = ("cache_aside", "read_through", "write_behind")


def origin_body(content_id: int, content_bytes: int) -> bytes:
    """The origin's deterministic default body for ``content_id`` —
    shared with tests so cache fills are verifiable end to end."""
    return bytes((content_id + i) % 256 for i in range(content_bytes))


class OriginService:
    """The authoritative content endpoint on one node."""

    def __init__(
        self,
        cluster: "AmpNetCluster",
        address,
        content_bytes: int = 40,
        channel: int = DEFAULT_CONTENT_CHANNEL,
    ):
        if content_bytes < 1:
            raise ValueError("content_bytes must be >= 1")
        self.cluster = cluster
        self.address = address
        self.content_bytes = content_bytes
        self.channel = channel
        self.counters = Counter()
        #: content ids overwritten by WRITEs (sparse over the catalog)
        self._written: Dict[int, bytes] = {}
        self.closed = False
        self._node = cluster.nodes[address]
        self._node.messenger.on_message(channel, self._rx)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._node.messenger.off_message(self.channel)

    def body_of(self, content_id: int) -> bytes:
        return self._written.get(
            content_id, origin_body(content_id, self.content_bytes)
        )

    def _rx(self, src, payload: bytes, channel: int) -> None:
        frame = decode(payload)
        if frame is None:
            self.counters.incr("origin_malformed")
            return
        if frame.op == OP_REQUEST:
            self.counters.incr("origin_requests")
            self._node.messenger.send(
                src,
                encode_response(frame.seq, frame.content_id,
                                self.body_of(frame.content_id)),
                channel,
            )
            self.counters.incr("origin_responses")
        elif frame.op == OP_WRITE:
            self._written[frame.content_id] = frame.body
            self.counters.incr("origin_writes")
        # RESPONSE / WRITE_ACK frames are not the origin's to handle.


class _Fetch:
    """One in-flight cache -> origin fetch and the clients awaiting it."""

    __slots__ = ("content_id", "waiters")

    def __init__(self, content_id: int):
        self.content_id = content_id
        #: (client address, client seq) pairs answered on completion
        self.waiters: List[Tuple[Any, int]] = []


class SegmentCache:
    """A bounded content cache on one node, fronting an origin."""

    def __init__(
        self,
        cluster: "AmpNetCluster",
        address,
        origin,
        policy: str = "read_through",
        capacity: int = 64,
        eviction: str = "lru",
        channel: int = DEFAULT_CONTENT_CHANNEL,
        flush_interval_ns: int = 500_000,
        flush_batch: int = 8,
    ):
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; "
                f"expected one of {CACHE_POLICIES}"
            )
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        if address == origin:
            raise ValueError("a cache cannot front itself as origin")
        if flush_interval_ns < 1 or flush_batch < 1:
            raise ValueError("flush interval and batch must be >= 1")
        self.cluster = cluster
        self.address = address
        self.origin = origin
        self.policy = policy
        self.channel = channel
        self.flush_interval_ns = flush_interval_ns
        self.flush_batch = flush_batch
        self.store = CacheStore(capacity, eviction)
        self.counters = Counter()
        #: fetch seq -> in-flight origin fetch
        self._pending: Dict[int, _Fetch] = {}
        #: content id -> fetch seq (the coalescing index)
        self._pending_by_cid: Dict[int, int] = {}
        self._next_seq = 0
        #: write-behind backlog, FIFO by first dirtying
        self._dirty: "OrderedDict[int, bytes]" = OrderedDict()
        self._flush_armed = False
        self.closed = False
        self._node = cluster.nodes[address]
        self._node.messenger.on_message(channel, self._rx)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._node.messenger.off_message(self.channel)

    @property
    def dirty_count(self) -> int:
        return len(self._dirty)

    # ------------------------------------------------------------- receive
    def _rx(self, src, payload: bytes, channel: int) -> None:
        frame = decode(payload)
        if frame is None:
            self.counters.incr("malformed")
            return
        if frame.op == OP_REQUEST:
            self._on_request(src, frame.seq, frame.content_id)
        elif frame.op == OP_RESPONSE:
            self._on_origin_response(frame.seq, frame.content_id, frame.body)
        elif frame.op == OP_WRITE:
            self._on_write(src, frame.seq, frame.content_id, frame.body)
        # WRITE_ACKs terminate at clients, not here.

    def _on_request(self, src, seq: int, content_id: int) -> None:
        body = self.store.get(content_id)
        if body is not None:
            self.counters.incr("hits")
            self._respond(src, seq, content_id, body)
            return
        self.counters.incr("misses")
        if self.policy != "cache_aside":
            # read_through/write_behind: the cache owns the loader, so
            # concurrent misses for one id share a single origin fetch.
            fetch_seq = self._pending_by_cid.get(content_id)
            if fetch_seq is not None:
                self._pending[fetch_seq].waiters.append((src, seq))
                self.counters.incr("coalesced")
                return
        fetch = _Fetch(content_id)
        fetch.waiters.append((src, seq))
        fetch_seq = self._take_seq()
        self._pending[fetch_seq] = fetch
        if self.policy != "cache_aside":
            self._pending_by_cid[content_id] = fetch_seq
        self.counters.incr("origin_fetches")
        self._node.messenger.send(
            self.origin, encode_request(fetch_seq, content_id), self.channel
        )

    def _on_origin_response(self, seq: int, content_id: int,
                            body: bytes) -> None:
        fetch = self._pending.pop(seq, None)
        if fetch is None:
            self.counters.incr("stray_responses")
            return
        if self._pending_by_cid.get(fetch.content_id) == seq:
            del self._pending_by_cid[fetch.content_id]
        if self.store.put(content_id, body) is not None:
            self.counters.incr("evictions")
        self.counters.incr("fills")
        for waiter_src, waiter_seq in fetch.waiters:
            self._respond(waiter_src, waiter_seq, content_id, body)

    def _on_write(self, src, seq: int, content_id: int, body: bytes) -> None:
        self.counters.incr("writes")
        if self.store.put(content_id, body) is not None:
            self.counters.incr("evictions")
        self._node.messenger.send(
            src, encode_write_ack(seq, content_id), self.channel
        )
        if self.policy == "write_behind":
            # Dirty entries keep their own copy: a later store eviction
            # must not lose an unflushed write.
            self._dirty[content_id] = body
            self._arm_flush()
        else:
            self.counters.incr("write_through")
            self._node.messenger.send(
                self.origin,
                encode_write(self._take_seq(), content_id, body),
                self.channel,
            )

    def _respond(self, dst, seq: int, content_id: int, body: bytes) -> None:
        self._node.messenger.send(
            dst, encode_response(seq, content_id, body), self.channel
        )
        self.counters.incr("responses")

    def _take_seq(self) -> int:
        self._next_seq += 1
        return self._next_seq

    # --------------------------------------------------------- write-behind
    def _arm_flush(self) -> None:
        if self._flush_armed:
            return
        self._flush_armed = True
        self.cluster.sim.call_in(self.flush_interval_ns, self._flush)

    def _flush(self) -> None:
        self._flush_armed = False
        if self.closed or not self._dirty:
            return
        for _ in range(min(self.flush_batch, len(self._dirty))):
            content_id, body = self._dirty.popitem(last=False)
            self._node.messenger.send(
                self.origin,
                encode_write(self._take_seq(), content_id, body),
                self.channel,
            )
            self.counters.incr("flushed")
        self.counters.incr("flush_batches")
        if self._dirty:
            self._arm_flush()


class CacheDeployment:
    """One origin plus its caches, built from a scenario's CacheSpec.

    The runner constructs this after ring-up and *before* workloads, so
    every service handler is listening before the first request leaves a
    client, and folds :meth:`counter_totals` into the result counters
    under a ``cache_`` prefix (mirroring the ``router_`` fold).
    """

    def __init__(
        self,
        cluster: "AmpNetCluster",
        origin,
        caches=(),
        policy: str = "read_through",
        capacity: int = 64,
        eviction: str = "lru",
        content_bytes: int = 40,
        channel: int = DEFAULT_CONTENT_CHANNEL,
        flush_interval_ns: int = 500_000,
        flush_batch: int = 8,
    ):
        self.origin = OriginService(
            cluster, origin, content_bytes=content_bytes, channel=channel
        )
        self.caches: List[SegmentCache] = [
            SegmentCache(
                cluster, address, origin, policy=policy, capacity=capacity,
                eviction=eviction, channel=channel,
                flush_interval_ns=flush_interval_ns, flush_batch=flush_batch,
            )
            for address in caches
        ]

    def close(self) -> None:
        for cache in self.caches:
            cache.close()
        self.origin.close()

    def counter_totals(self) -> Dict[str, int]:
        """Deployment-wide accounting, sorted by name: origin counters,
        cache counters summed across caches, plus residency gauges."""
        totals: Dict[str, int] = dict(self.origin.counters)
        for cache in self.caches:
            for key, value in cache.counters.items():
                totals[key] = totals.get(key, 0) + value
        if self.caches:
            totals["resident"] = sum(len(c.store) for c in self.caches)
            totals["store_evictions"] = sum(
                c.store.evictions for c in self.caches
            )
            totals["dirty_resident"] = sum(c.dirty_count for c in self.caches)
        return dict(sorted(totals.items()))
