"""Integration: AmpSubscribe, AmpFiles, AmpThreads, AmpIP (slide 12)."""

import pytest

from repro import AmpNetCluster, ClusterConfig
from repro.services import FileError, RemoteCallError


def make_cluster(n_nodes=4, n_switches=2, **kw):
    cluster = AmpNetCluster(config=ClusterConfig(n_nodes=n_nodes,
                                                 n_switches=n_switches, **kw))
    cluster.start()
    cluster.run_until_ring_up()
    return cluster


def settle(cluster, tours=30):
    cluster.run(until=cluster.sim.now + tours * cluster.tour_estimate_ns)


# ---------------------------------------------------------------- subscribe
def test_publish_reaches_all_subscribers():
    cluster = make_cluster()
    got = {i: [] for i in cluster.nodes}
    for i, node in cluster.nodes.items():
        node.subscribe.subscribe(
            "sensors/temp", lambda t, p, pub, i=i: got[i].append((p, pub))
        )
    cluster.nodes[2].subscribe.publish("sensors/temp", b"21.5C")
    settle(cluster)
    for i in cluster.nodes:
        assert got[i] == [(b"21.5C", 2)], i  # including the publisher


def test_subscribe_topic_filtering():
    cluster = make_cluster()
    temp, motion = [], []
    cluster.nodes[0].subscribe.subscribe("t", lambda t, p, s: temp.append(p))
    cluster.nodes[0].subscribe.subscribe("m", lambda t, p, s: motion.append(p))
    cluster.nodes[1].subscribe.publish("t", b"a")
    cluster.nodes[1].subscribe.publish("m", b"b")
    cluster.nodes[1].subscribe.publish("other", b"c")
    settle(cluster)
    assert temp == [b"a"] and motion == [b"b"]


def test_unsubscribe_stops_delivery():
    cluster = make_cluster()
    got = []
    cancel = cluster.nodes[0].subscribe.subscribe("x", lambda t, p, s: got.append(p))
    cluster.nodes[1].subscribe.publish("x", b"1")
    settle(cluster)
    cancel()
    cluster.nodes[1].subscribe.publish("x", b"2")
    settle(cluster)
    assert got == [b"1"]


# -------------------------------------------------------------------- files
def test_file_write_readable_from_every_node():
    cluster = make_cluster()
    content = bytes(i % 251 for i in range(1000))
    cluster.nodes[0].files.write_file("dataset.bin", content)
    settle(cluster, tours=120)
    for node in cluster.nodes.values():
        assert node.files.exists("dataset.bin")
        assert node.files.read_file_now("dataset.bin") == content
        assert node.files.file_size("dataset.bin") == 1000


def test_file_overwrite_in_place():
    cluster = make_cluster()
    cluster.nodes[0].files.write_file("cfg", b"version-1")
    settle(cluster, tours=60)
    cluster.nodes[1].files.write_file("cfg", b"version-2 is longer")
    settle(cluster, tours=60)
    for node in cluster.nodes.values():
        assert node.files.read_file_now("cfg") == b"version-2 is longer"


def test_file_listing():
    cluster = make_cluster()
    cluster.nodes[0].files.write_file("a", b"1")
    cluster.nodes[1].files.write_file("b", b"2")
    settle(cluster, tours=60)
    assert cluster.nodes[3].files.list_files() == ["a", "b"]


def test_file_errors():
    cluster = make_cluster()
    with pytest.raises(FileError):
        cluster.nodes[0].files.read_file_now("ghost")
    with pytest.raises(FileError):
        cluster.nodes[0].files.write_file("big", b"x" * (64 * 600))


def test_files_survive_node_crash_and_rejoin():
    cluster = make_cluster(n_nodes=6, n_switches=4)
    cluster.nodes[0].files.write_file("ark", b"two of each")
    settle(cluster, tours=60)
    cluster.crash_node(2)
    cluster.run_until_reroster()
    cluster.recover_node(2)
    cluster.run_until_reroster()
    settle(cluster, tours=200)
    assert cluster.nodes[2].files.read_file_now("ark") == b"two of each"


# ------------------------------------------------------------------ threads
def test_remote_spawn_returns_result():
    cluster = make_cluster()

    def double(node, args):
        yield node.sim.timeout(1_000)
        return bytes(2 * b for b in args)

    cluster.nodes[3].threads.register("double", double)
    result = {}

    def caller():
        out = yield from cluster.nodes[0].threads.spawn(3, "double", bytes([1, 2, 3]))
        result["out"] = out

    cluster.sim.process(caller())
    settle(cluster, tours=60)
    assert result["out"] == bytes([2, 4, 6])


def test_remote_spawn_unknown_entry_raises():
    cluster = make_cluster()
    result = {}

    def caller():
        try:
            yield from cluster.nodes[0].threads.spawn(1, "nope")
        except RemoteCallError as exc:
            result["err"] = str(exc)

    cluster.sim.process(caller())
    settle(cluster, tours=60)
    assert "nope" in result["err"]


def test_remote_spawn_exception_propagates():
    cluster = make_cluster()

    def bad(node, args):
        yield node.sim.timeout(10)
        raise RuntimeError("kaboom")

    cluster.nodes[2].threads.register("bad", bad)
    result = {}

    def caller():
        try:
            yield from cluster.nodes[1].threads.spawn(2, "bad")
        except RemoteCallError as exc:
            result["err"] = str(exc)

    cluster.sim.process(caller())
    settle(cluster, tours=60)
    assert "kaboom" in result["err"]


# -------------------------------------------------------------------- AmpIP
def test_datagram_roundtrip():
    cluster = make_cluster()
    server = cluster.nodes[2].ip.socket(7)
    got = {}

    def serve():
        addr, payload = yield from server.recvfrom()
        got["req"] = (addr, payload)

    cluster.sim.process(serve())
    client = cluster.nodes[0].ip.socket(1234)
    assert client.sendto(2, 7, b"ping") is True
    settle(cluster)
    assert got["req"] == ((0, 1234), b"ping")


def test_datagram_to_unbound_port_dropped():
    cluster = make_cluster()
    cluster.nodes[0].ip.send_datagram(1, 9999, b"void")
    settle(cluster)
    assert cluster.nodes[1].ip.counters["no_socket_drop"] == 1


def test_port_rebind_rejected_and_close_frees():
    cluster = make_cluster()
    sock = cluster.nodes[0].ip.socket(80)
    with pytest.raises(ValueError):
        cluster.nodes[0].ip.socket(80)
    sock.close()
    cluster.nodes[0].ip.socket(80)  # rebind after close is fine
