"""MicroPacket object model (paper slides 4-6).

AmpNet's link layer carries *MicroPackets*: tiny fixed-format cells for
ordinary traffic plus a variable-format cell for DMA bulk data.  The type
table on slide 4 is reproduced verbatim by :data:`TYPE_REGISTRY` (and bench
T1 regenerates it from this module).

Wire layout (slide 5, fixed format)::

    Word 0   Control 0..3          -- control word, see ControlWord
    Word 1   Payload 0..3
    Word 2   Payload 4..7          -- 12 bytes total between SOF and EOF

Variable format (slide 6)::

    Word 0   Control 0..3
    Word 1   DMA Ctrl 0..3
    Word 2   DMA Ctrl 4..7
    Word 3+  Payload 0..63         -- up to 19 words / 76 bytes

The SOF/EOF delimiters and the trailing CRC live one layer down in
:mod:`repro.micropacket.framing`, mirroring how Fibre Channel frames carry
the FC-1 delimiters outside the frame content proper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Dict, List, Optional, Tuple

__all__ = [
    "MicroPacketType",
    "TypeInfo",
    "TYPE_REGISTRY",
    "Flags",
    "BROADCAST",
    "DmaControl",
    "MicroPacket",
    "FIXED_PAYLOAD_MAX",
    "VARIABLE_PAYLOAD_MAX",
    "FIXED_WIRE_BYTES",
    "HEADER_BYTES",
    "MAX_SEGMENT",
    "ROUTED_OFFSET_MAX",
]

#: Destination address meaning "every node on the ring" (slide 8's
#: all-to-all broadcast uses this).
BROADCAST = 0xFF

#: Highest segment id the global-address header extension can carry.
#: Segment ids ride in two reserved nibbles of the DMA control block as
#: ``value + 1`` (0 = "no segment / local traffic"), so 15 segments
#: (0..14) of up to 255 nodes each are addressable — 3825 nodes per
#: routed cluster against the single ring's 255-node ceiling.
MAX_SEGMENT = 14

#: Routed packets reserve the top byte of the 32-bit DMA offset for the
#: origin node id, capping a single routed transfer at 16 MiB.
ROUTED_OFFSET_MAX = 0xFF_FFFF

#: Fixed-format packets carry at most two payload words.
FIXED_PAYLOAD_MAX = 8
#: Variable-format packets carry at most sixteen payload words.
VARIABLE_PAYLOAD_MAX = 64
#: Control word + two payload words.
FIXED_WIRE_BYTES = 12
#: Control word + DMA control words (variable format header).
HEADER_BYTES = 12


class MicroPacketType(IntEnum):
    """The six MicroPacket types of slide 4."""

    ROSTERING = 0
    DATA = 1
    DMA = 2
    INTERRUPT = 3
    DIAGNOSTIC = 4
    D64_ATOMIC = 5


class Flags(IntEnum):
    """Control-word flag bits (4 bits available)."""

    NONE = 0
    BROADCAST_FLAG = 1  # destination field is advisory; every node copies
    ACK_REQUEST = 2     # receiver must emit an INTERRUPT ack
    PRIORITY = 4        # overtakes DATA in insertion queues
    POISON = 8          # diagnostics: deliberately corrupt at next hop


@dataclass(frozen=True)
class TypeInfo:
    """One row of the slide-4 MicroPacket table."""

    ptype: MicroPacketType
    name: str
    length: str          # "Fixed" | "Variable"
    mandatory: bool
    description: str


#: Slide 4, reproduced as data.  Bench T1 renders this registry.
TYPE_REGISTRY: Dict[MicroPacketType, TypeInfo] = {
    MicroPacketType.ROSTERING: TypeInfo(
        MicroPacketType.ROSTERING, "Rostering", "Fixed", True,
        "topology exploration and roster distribution after failures",
    ),
    MicroPacketType.DATA: TypeInfo(
        MicroPacketType.DATA, "Data", "Fixed", True,
        "ordinary message traffic, eight payload bytes per cell",
    ),
    MicroPacketType.DMA: TypeInfo(
        MicroPacketType.DMA, "DMA", "Variable", True,
        "bulk transfers between registered host memory regions",
    ),
    MicroPacketType.INTERRUPT: TypeInfo(
        MicroPacketType.INTERRUPT, "Interrupt", "Fixed", True,
        "cross-node signalling (completion, subscription wakeups)",
    ),
    MicroPacketType.DIAGNOSTIC: TypeInfo(
        MicroPacketType.DIAGNOSTIC, "Diagnostic", "Fixed", True,
        "built-in test traffic certifying a new configuration",
    ),
    MicroPacketType.D64_ATOMIC: TypeInfo(
        MicroPacketType.D64_ATOMIC, "D64 Atomic", "Fixed", False,
        "ring-ordered 64-bit atomic operation (network semaphores)",
    ),
}


@dataclass(frozen=True)
class DmaControl:
    """Eight bytes of DMA control carried by variable-format packets.

    Layout (DMA Ctrl 0..7)::

        byte 0      DMA channel (0..15, low nibble); high nibble carries
                    the global-address *destination segment* (value+1,
                    0 = unrouted)
        byte 1      transfer flags (bit0 = last cell of transfer,
                    bit1 = cluster-scoped broadcast); the high nibble
                    carries the *source segment* (value+1, 0 = none);
                    bits 2..3 remain reserved
        bytes 2..5  destination region offset (little-endian u32).  For
                    routed packets the offset is 24-bit (bytes 2..4) and
                    byte 5 carries the *source node id* of the original
                    inserter
        bytes 6..7  transfer id (little-endian u16)

    The segment fields are the **global-address extension** that lets a
    :class:`~repro.routing.SegmentRouter` join several 8-bit rings: a
    packet whose ``dst_segment`` differs from the local ring's segment id
    is copied off the ring by the router and re-originated on the next
    segment, while ``(src_segment, src_node)`` preserves the original
    sender across re-originations so receivers can reply.  All three
    fields ride in bits that were reserved (zero) before the extension,
    so unrouted packets pack byte-identically to the pre-extension
    format.
    """

    channel: int
    offset: int
    transfer_id: int = 0
    last: bool = False
    #: global-address extension (None on all three = plain local packet)
    src_segment: Optional[int] = None
    src_node: Optional[int] = None
    dst_segment: Optional[int] = None
    #: cluster-scoped broadcast: deliver on every ring member of every
    #: segment.  Routers fan the transfer out over the spanning tree;
    #: ``dst_segment`` stays None (the frame is local traffic on every
    #: ring it tours) and ``(src_segment, src_node)`` names the origin
    #: for end-to-end dedup.  Rides reserved bit 1 of the flags byte,
    #: so packets without it pack byte-identically as before.
    cluster_broadcast: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.channel <= 15:
            raise ValueError(f"DMA channel {self.channel} out of range 0..15")
        if not 0 <= self.offset <= 0xFFFF_FFFF:
            raise ValueError("DMA offset out of u32 range")
        if not 0 <= self.transfer_id <= 0xFFFF:
            raise ValueError("transfer id out of u16 range")
        if (self.src_segment is None) != (self.src_node is None):
            raise ValueError(
                "src_segment and src_node form one global address; "
                "set both or neither"
            )
        for seg in (self.src_segment, self.dst_segment):
            if seg is not None and not 0 <= seg <= MAX_SEGMENT:
                raise ValueError(
                    f"segment id {seg} out of range 0..{MAX_SEGMENT}"
                )
        if self.src_node is not None and not 0 <= self.src_node <= 0xFE:
            raise ValueError(f"source node id {self.src_node} out of range 0..254")
        if self.cluster_broadcast:
            if self.src_segment is None:
                raise ValueError(
                    "cluster broadcasts need the origin global address "
                    "(src_segment/src_node) for end-to-end dedup"
                )
            if self.dst_segment is not None:
                raise ValueError(
                    "cluster broadcasts are segment-unscoped; "
                    "dst_segment must stay None"
                )
        if self.routed and self.offset > ROUTED_OFFSET_MAX:
            raise ValueError(
                "routed packets carry a 24-bit offset (the top offset "
                "byte holds the source node id)"
            )

    @property
    def routed(self) -> bool:
        """True when the global-address extension is in use."""
        return self.src_segment is not None or self.dst_segment is not None

    def pack(self) -> bytes:
        byte0 = self.channel
        if self.dst_segment is not None:
            byte0 |= (self.dst_segment + 1) << 4
        byte1 = 1 if self.last else 0
        if self.cluster_broadcast:
            byte1 |= 2
        if self.src_segment is not None:
            byte1 |= (self.src_segment + 1) << 4
            offset = self.offset.to_bytes(3, "little") + bytes([self.src_node])
        else:
            offset = self.offset.to_bytes(4, "little")
        return bytes([byte0, byte1]) + offset + self.transfer_id.to_bytes(2, "little")

    @classmethod
    def unpack(cls, raw: bytes) -> "DmaControl":
        if len(raw) != 8:
            raise ValueError(f"DMA control must be 8 bytes, got {len(raw)}")
        dst_nibble = raw[0] >> 4
        src_nibble = raw[1] >> 4
        if src_nibble:
            offset = int.from_bytes(raw[2:5], "little")
            src_node: Optional[int] = raw[5]
        else:
            offset = int.from_bytes(raw[2:6], "little")
            src_node = None
        return cls(
            channel=raw[0] & 0xF,
            last=bool(raw[1] & 1),
            offset=offset,
            transfer_id=int.from_bytes(raw[6:8], "little"),
            src_segment=src_nibble - 1 if src_nibble else None,
            src_node=src_node,
            dst_segment=dst_nibble - 1 if dst_nibble else None,
            cluster_broadcast=bool(raw[1] & 2),
        )


@dataclass(frozen=True)
class MicroPacket:
    """One MicroPacket as handled by NICs, switches and the ring protocol.

    Instances are immutable; forwarding stages that must annotate a packet
    (hop counts for rostering, for example) use :meth:`with_seq` /
    ``dataclasses.replace``.
    """

    ptype: MicroPacketType
    src: int
    dst: int
    payload: bytes = b""
    seq: int = 0
    channel: int = 0
    flags: int = 0
    dma: Optional[DmaControl] = None

    def __post_init__(self) -> None:
        if not 0 <= self.src <= 0xFE:
            raise ValueError(f"source id {self.src} out of range 0..254")
        if not 0 <= self.dst <= 0xFF:
            raise ValueError(f"destination id {self.dst} out of range 0..255")
        if not 0 <= self.seq <= 0xF:
            raise ValueError("link-layer seq is 4 bits (0..15)")
        if not 0 <= self.channel <= 0xF:
            raise ValueError("channel is 4 bits (0..15)")
        if not 0 <= self.flags <= 0xF:
            raise ValueError("flags nibble out of range")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError("payload must be bytes")
        object.__setattr__(self, "payload", bytes(self.payload))
        if self.ptype == MicroPacketType.DMA:
            if self.dma is None:
                raise ValueError("DMA packets require a DmaControl block")
            if len(self.payload) > VARIABLE_PAYLOAD_MAX:
                raise ValueError(
                    f"variable payload {len(self.payload)} exceeds "
                    f"{VARIABLE_PAYLOAD_MAX} bytes"
                )
        else:
            if self.dma is not None:
                raise ValueError(f"{self.ptype.name} packets carry no DMA control")
            if len(self.payload) > FIXED_PAYLOAD_MAX:
                raise ValueError(
                    f"fixed payload {len(self.payload)} exceeds "
                    f"{FIXED_PAYLOAD_MAX} bytes"
                )
        if self.is_broadcast and not (self.flags & Flags.BROADCAST_FLAG):
            object.__setattr__(self, "flags", self.flags | Flags.BROADCAST_FLAG)

    # ------------------------------------------------------------- queries
    @property
    def info(self) -> TypeInfo:
        return TYPE_REGISTRY[self.ptype]

    @property
    def is_fixed(self) -> bool:
        return self.ptype != MicroPacketType.DMA

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    @property
    def wire_bytes(self) -> int:
        """Packet content bytes between SOF and EOF (excluding CRC)."""
        if self.is_fixed:
            return FIXED_WIRE_BYTES
        # Variable: header + payload rounded up to a whole word.
        words = (len(self.payload) + 3) // 4
        return HEADER_BYTES + 4 * max(words, 1)

    def with_seq(self, seq: int) -> "MicroPacket":
        return replace(self, seq=seq & 0xF)

    def describe(self) -> str:
        """Human-readable one-liner used in traces."""
        kind = self.info.name
        target = "BCAST" if self.is_broadcast else str(self.dst)
        return (
            f"{kind}[{self.src}->{target} ch{self.channel} "
            f"seq{self.seq} {len(self.payload)}B]"
        )


def type_table_rows() -> List[Tuple[str, str, str]]:
    """Rows of the slide-4 table: (name, length, mandatory)."""
    return [
        (info.name, info.length, "Yes" if info.mandatory else "No")
        for info in TYPE_REGISTRY.values()
    ]
