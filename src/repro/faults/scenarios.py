"""Named failure scenarios used by tests and benchmarks.

Each factory returns a :class:`~repro.faults.injector.FaultSchedule`
describing a reproducible storyline against a quad-redundant slide-14
cluster.  Times are expressed in multiples of the cluster's ring-tour
estimate so the same scenario scales with topology parameters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .injector import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import AmpNetCluster

__all__ = [
    "single_link_cut",
    "switch_blackout",
    "rolling_switch_failures",
    "primary_crash",
    "crash_and_rejoin",
    "double_fault",
    "flapping_node",
    "partition_and_heal",
]


def _tour(cluster: "AmpNetCluster") -> int:
    return cluster.tour_estimate_ns


def single_link_cut(cluster: "AmpNetCluster", node: int = 0,
                    after_tours: int = 20) -> FaultSchedule:
    """Cut one node's active-hop fibre once the ring is steady."""
    roster = cluster.current_roster()
    switch = roster.hop_switch_from(node) if roster else 0
    return FaultSchedule().cut_link(after_tours * _tour(cluster), node, switch)


def switch_blackout(cluster: "AmpNetCluster", switch: int = 0,
                    after_tours: int = 20) -> FaultSchedule:
    """An entire switch loses power."""
    return FaultSchedule().fail_switch(after_tours * _tour(cluster), switch)


def rolling_switch_failures(cluster: "AmpNetCluster",
                            gap_tours: int = 60) -> FaultSchedule:
    """Switches die one after another until a single survivor remains."""
    sched = FaultSchedule()
    tour = _tour(cluster)
    for i, sw in enumerate(range(len(cluster.topology.switches) - 1)):
        sched.fail_switch((i + 1) * gap_tours * tour, sw)
    return sched


def primary_crash(cluster: "AmpNetCluster", node: int = 0,
                  after_tours: int = 50) -> FaultSchedule:
    """Crash the (by convention) primary node of a control group."""
    return FaultSchedule().crash_node(after_tours * _tour(cluster), node)


def crash_and_rejoin(cluster: "AmpNetCluster", node: int = 2,
                     crash_tours: int = 40,
                     rejoin_tours: int = 200) -> FaultSchedule:
    """Node crashes, then powers back up and seeks assimilation."""
    tour = _tour(cluster)
    return (
        FaultSchedule()
        .crash_node(crash_tours * tour, node)
        .recover_node(rejoin_tours * tour, node)
    )


def flapping_node(cluster: "AmpNetCluster", node: int = 1,
                  after_tours: int = 40, flaps: int = 3,
                  down_tours: int = 40, up_tours: int = 120) -> FaultSchedule:
    """A node that keeps crashing and recovering — the churn pattern that
    stresses suspicion/refutation in the gossip membership layer."""
    tour = _tour(cluster)
    return FaultSchedule().flap_node(
        after_tours * tour, node, flaps=flaps,
        down_ns=down_tours * tour, up_ns=up_tours * tour,
    )


def partition_and_heal(cluster: "AmpNetCluster",
                       after_tours: int = 40,
                       heal_tours: int = 400) -> FaultSchedule:
    """Split the segment down the middle (half the nodes keep half the
    switches), then heal.  Each side keeps running its own ring; gossip
    on each side declares the other side dead, and the heal forces the
    views to reconcile via incarnation refutations."""
    tour = _tour(cluster)
    n_nodes = len(cluster.nodes)
    n_switches = len(cluster.topology.switches)
    if n_switches < 2:
        raise ValueError(
            "cannot partition a single-switch segment: both sides need "
            "at least one switch of their own"
        )
    side_a = tuple(range(n_nodes // 2))
    switches_a = tuple(range(n_switches // 2))
    return (
        FaultSchedule()
        .partition(after_tours * tour, side_a, switches_a)
        .heal_partition((after_tours + heal_tours) * tour, side_a, switches_a)
    )


def double_fault(cluster: "AmpNetCluster", after_tours: int = 30) -> FaultSchedule:
    """A switch dies and, mid-rostering, a node's link to the next-best
    switch is cut — the overlapping-failure stress case."""
    tour = _tour(cluster)
    return (
        FaultSchedule()
        .fail_switch(after_tours * tour, 0)
        .cut_link(after_tours * tour + tour // 2, 1, 1)
    )
