"""A3 (ablation, slide 10): write-through host regions vs a host cache.

Slide 10's coherence rule: host-memory views of NIC memory are written
through — "no caching is allowed in local host cache".  This ablation
shows why: a hypothetical host-side cached copy refreshed by polling
serves stale values for up to its poll interval, while the write-through
view (reading NIC SRAM directly under the seqlock) is stale only for the
replication flight time.
"""

from repro import AmpNetCluster, ClusterConfig
from repro.analysis import fmt_ns, render_table
from repro.cache import RegionSpec

import harness

REGION = RegionSpec(region_id=6, name="a3", n_records=2, record_size=16)
WRITES = 120
WRITE_INTERVAL_NS = 40_000


def run_experiment():
    cluster = AmpNetCluster(
        config=ClusterConfig(n_nodes=4, n_switches=2, regions=[REGION])
    )
    cluster.start()
    cluster.run_until_ring_up()
    sim = cluster.sim
    writer = cluster.nodes[0]
    reader = cluster.nodes[2]

    #: value byte -> time written (ground truth for staleness)
    written_at = {}

    def writer_proc():
        for k in range(1, WRITES + 1):
            written_at[k % 256] = sim.now
            writer.cache.write("a3", 0, bytes([k % 256]) * 16)
            yield sim.timeout(WRITE_INTERVAL_NS)

    results = {}

    def sample_staleness(name, read_value_fn, sample_interval, poll_interval=None):
        staleness = []
        cached = {"value": 0, "refreshed": 0}

        def proc():
            while sim.now < WRITES * WRITE_INTERVAL_NS:
                if poll_interval is None:
                    value = read_value_fn()
                else:
                    # host cache: refresh only every poll_interval
                    if sim.now - cached["refreshed"] >= poll_interval:
                        cached["value"] = read_value_fn()
                        cached["refreshed"] = sim.now
                    value = cached["value"]
                if value in written_at:
                    newest = max(written_at.values())
                    staleness.append(newest - written_at[value])
                yield sim.timeout(sample_interval)
            results[name] = staleness

        sim.process(proc())

    def read_now():
        ok, data, _v = reader.cache.try_read("a3", 0)
        return data[0] if ok and data else 0

    sample_staleness("write-through (slide 10)", read_now, 10_000)
    sample_staleness("host cache, 0.5 ms poll", read_now, 10_000,
                     poll_interval=500_000)
    sample_staleness("host cache, 2 ms poll", read_now, 10_000,
                     poll_interval=2_000_000)

    sim.process(writer_proc())
    cluster.run(until=(WRITES + 10) * WRITE_INTERVAL_NS)
    return {
        name: (sum(vals) / len(vals) if vals else 0.0, max(vals, default=0))
        for name, vals in results.items()
    }


def test_a3_writethrough_ablation(benchmark, publish, publish_json):
    summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    wt_mean, _wt_max = summary["write-through (slide 10)"]
    slow_mean, _ = summary["host cache, 2 ms poll"]
    fast_mean, _ = summary["host cache, 0.5 ms poll"]

    # Write-through beats any polling cache; staleness grows with the
    # poll interval — the reason slide 10 forbids host caching.
    assert wt_mean < fast_mean < slow_mean

    rows = [
        (name, fmt_ns(mean), fmt_ns(worst))
        for name, (mean, worst) in summary.items()
    ]
    publish(
        "A3",
        render_table(
            "A3 (slide 10): host view staleness under a 25 kHz writer",
            ["Host view discipline", "Mean staleness", "Worst staleness"],
            rows,
        ),
    )
    publish_json(
        harness.bench_payload(
            exp="A3",
            title="Write-through ablation: host view staleness vs polling cache",
            params={"writes": WRITES, "write_interval_ns": WRITE_INTERVAL_NS,
                    "n_nodes": 4},
            columns=["discipline", "mean_staleness_ns", "worst_staleness_ns"],
            rows=[
                [name, round(mean, 1), worst]
                for name, (mean, worst) in summary.items()
            ],
            metrics={
                "writethrough_mean_staleness_ns": round(wt_mean, 1),
                "slow_poll_mean_staleness_ns": round(slow_mean, 1),
            },
            notes="Simulated-time staleness, deterministic under the seed. "
                  "Write-through is stale only for the replication flight "
                  "time; a polled host cache is stale up to its interval.",
        )
    )
