"""Deterministic discrete-event simulation kernel (AmpNet substrate).

Public surface::

    from repro.sim import Simulator, Interrupt, Store, Gate, Tracer

See :mod:`repro.sim.kernel` for the event-loop semantics.
"""

from .events import (
    AllOf,
    AnyOf,
    Callback,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .kernel import Simulator, StopSimulation
from .monitor import (
    NULL_TRACER,
    ConvergenceTracker,
    Counter,
    LatencyStat,
    TimeSeries,
    Tracer,
)
from .rand import SeededStreams, derive_seed
from .resources import Gate, PriorityStore, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Callback",
    "ConvergenceTracker",
    "Counter",
    "Event",
    "Gate",
    "Interrupt",
    "LatencyStat",
    "NULL_TRACER",
    "PriorityStore",
    "Process",
    "Resource",
    "SeededStreams",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "TimeSeries",
    "Timeout",
    "Tracer",
    "derive_seed",
]
