"""Synthetic workloads: message streams, file streams, broadcast storms."""

from .generators import (
    AllToAllBroadcast,
    FileStream,
    MessageStream,
    StreamStats,
    run_slide7_mixed_workload,
)

__all__ = [
    "AllToAllBroadcast",
    "FileStream",
    "MessageStream",
    "StreamStats",
    "run_slide7_mixed_workload",
]
