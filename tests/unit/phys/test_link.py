"""Serial link and fibre tests: timing, ordering, faults, carrier."""

import pytest

from repro.micropacket import MicroPacket, MicroPacketType
from repro.phys import (
    CARRIER_DETECT_NS,
    Fiber,
    Port,
    frame_for,
    propagation_ns,
    serialization_ns,
)
from repro.sim import Simulator


def data_pkt(src=0, dst=1, payload=b"12345678"):
    return MicroPacket(ptype=MicroPacketType.DATA, src=src, dst=dst, payload=payload)


def wired_pair(sim, length_m=100.0):
    a = Port(sim, "a")
    b = Port(sim, "b")
    fiber = Fiber(sim, a, b, length_m)
    return a, b, fiber


# ------------------------------------------------------------------ timing
def test_serialization_ns_exact_rate():
    # 17 bits at 1.0625 Gbit/s is exactly 16 ns.
    assert serialization_ns(17) == 16
    assert serialization_ns(0) == 0
    # Rounds up, never down.
    assert serialization_ns(1) == 1


def test_serialization_rejects_negative():
    with pytest.raises(ValueError):
        serialization_ns(-1)


def test_propagation_5ns_per_m():
    assert propagation_ns(100) == 500
    with pytest.raises(ValueError):
        propagation_ns(-1)


def test_frame_delivery_time_is_serialize_plus_propagate():
    sim = Simulator()
    a, b, _fiber = wired_pair(sim, length_m=200.0)
    got = []
    b.set_handlers(on_frame=lambda f, p: got.append((f, sim.now)))
    frame = frame_for(data_pkt())
    a.send(frame)
    sim.run()
    expected = serialization_ns(frame.wire_bits) + propagation_ns(200.0)
    assert got[0][1] == expected


def test_frames_preserve_fifo_order():
    sim = Simulator()
    a, b, _fiber = wired_pair(sim)
    got = []
    b.set_handlers(on_frame=lambda f, p: got.append(f.packet.seq))
    for seq in range(6):
        a.send(frame_for(data_pkt().with_seq(seq)))
    sim.run()
    assert got == [0, 1, 2, 3, 4, 5]


def test_back_to_back_frames_pipeline_at_line_rate():
    sim = Simulator()
    a, b, _fiber = wired_pair(sim, length_m=0.0)
    times = []
    b.set_handlers(on_frame=lambda f, p: times.append(sim.now))
    frame0 = frame_for(data_pkt())
    for _ in range(3):
        a.send(frame_for(data_pkt()))
    sim.run()
    ser = serialization_ns(frame0.wire_bits)
    assert times == [ser, 2 * ser, 3 * ser]


def test_duplex_directions_independent():
    sim = Simulator()
    a, b, _fiber = wired_pair(sim)
    got_a, got_b = [], []
    a.set_handlers(on_frame=lambda f, p: got_a.append(f))
    b.set_handlers(on_frame=lambda f, p: got_b.append(f))
    a.send(frame_for(data_pkt(src=0, dst=1)))
    b.send(frame_for(data_pkt(src=1, dst=0)))
    sim.run()
    assert len(got_a) == 1 and len(got_b) == 1


# ------------------------------------------------------------------ faults
def test_cut_fiber_loses_in_flight_frame():
    sim = Simulator()
    a, b, fiber = wired_pair(sim, length_m=1000.0)
    got = []
    b.set_handlers(on_frame=lambda f, p: got.append(f))
    a.send(frame_for(data_pkt()))
    # Cut while the frame is still in flight.
    sim.call_in(serialization_ns(frame_for(data_pkt()).wire_bits) + 1, fiber.cut)
    sim.run()
    assert got == []
    assert fiber.ab.frames_lost == 1


def test_send_on_dark_fiber_returns_false():
    sim = Simulator()
    a, _b, fiber = wired_pair(sim)
    fiber.cut()
    sim.run()
    assert a.send(frame_for(data_pkt())) is False


def test_carrier_loss_after_debounce():
    sim = Simulator()
    a, b, fiber = wired_pair(sim)
    events = []
    b.set_handlers(on_carrier=lambda up, p: events.append((up, sim.now)))
    sim.call_in(5_000, fiber.cut)
    sim.run()
    assert events == [(False, 5_000 + CARRIER_DETECT_NS)]


def test_carrier_restore_after_debounce():
    sim = Simulator()
    a, b, fiber = wired_pair(sim)
    events = []
    b.set_handlers(on_carrier=lambda up, p: events.append((up, sim.now)))
    sim.call_in(1_000, fiber.cut)
    sim.call_in(100_000, fiber.restore)
    sim.run()
    assert events[-1] == (True, 100_000 + CARRIER_DETECT_NS)
    assert fiber.is_up


def test_rapid_cut_restore_suppresses_stale_carrier_event():
    sim = Simulator()
    a, b, fiber = wired_pair(sim)
    events = []
    b.set_handlers(on_carrier=lambda up, p: events.append((up, sim.now)))
    sim.call_in(1_000, fiber.cut)
    sim.call_in(2_000, fiber.restore)  # restored before debounce expires
    sim.run()
    # The down transition from the cut must not be delivered after restore.
    assert (False, 1_000 + CARRIER_DETECT_NS) not in events


def test_corrupt_frame_counted_not_delivered():
    sim = Simulator()
    a, b, _fiber = wired_pair(sim)
    got = []
    b.set_handlers(on_frame=lambda f, p: got.append(f))
    a.send(frame_for(data_pkt()).damaged())
    sim.run()
    assert got == []
    assert b.rx_corrupt == 1
    assert b.rx_frames == 0


def test_endpoint_dark_and_lit_refcount():
    sim = Simulator()
    a, b, fiber = wired_pair(sim)
    fiber.endpoint_dark()
    fiber.endpoint_dark()
    fiber.endpoint_lit()
    assert not fiber.is_up  # one dark side remains
    fiber.endpoint_lit()
    assert fiber.is_up
    with pytest.raises(ValueError):
        fiber.endpoint_lit()


def test_transmit_during_cut_is_lost_not_queued():
    sim = Simulator()
    a, b, fiber = wired_pair(sim, length_m=10.0)
    got = []
    b.set_handlers(on_frame=lambda f, p: got.append(f))

    def script():
        yield sim.timeout(100)
        fiber.cut()
        yield sim.timeout(CARRIER_DETECT_NS + 100)
        a.send(frame_for(data_pkt()))  # returns False, nothing queued
        fiber.restore()
        yield sim.timeout(CARRIER_DETECT_NS + 100)
        a.send(frame_for(data_pkt()))

    sim.process(script())
    sim.run()
    assert len(got) == 1


def test_frame_for_wire_bits_accounting():
    frame = frame_for(data_pkt())
    # fixed cell: SOF+12+CRC4+EOF = 18 chars, + 2 idle = 20 chars = 200 bits
    assert frame.wire_bits == 200
    frame0 = frame_for(data_pkt(), idle_gap=0)
    assert frame0.wire_bits == 180


def test_frame_ids_unique():
    f1, f2 = frame_for(data_pkt()), frame_for(data_pkt())
    assert f1.frame_id != f2.frame_id


def test_damaged_copy_preserves_identity():
    f = frame_for(data_pkt())
    d = f.damaged()
    assert d.corrupt and not f.corrupt
    assert d.frame_id == f.frame_id
