"""Network Cache: replicated NIC memory with Lamport-counter seqlocks
(slides 2, 9-11), replication, assimilation refresh, network semaphores."""

from .network_cache import (
    CacheError,
    NetworkCache,
    RecordUpdate,
    RegionSpec,
    decode_update,
    encode_update,
)
from .refresh import RefreshService
from .replication import CacheReplicator
from .semaphore import SEM_REGION, SemaphoreError, SemaphoreService

__all__ = [
    "CacheError",
    "CacheReplicator",
    "NetworkCache",
    "RecordUpdate",
    "RefreshService",
    "RegionSpec",
    "SEM_REGION",
    "SemaphoreError",
    "SemaphoreService",
    "decode_update",
    "encode_update",
]
