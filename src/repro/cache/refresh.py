"""Cache refresh: how a (re)joining node warms its replica (slide 18).

    "Smart Data Recovery is supported by Cache Refresh...
     New nodes are assimilated with a cache refresh." (slides 2, 18)

Protocol on the REFRESH channel:

1. The joiner broadcasts a refresh-request signal once its ring comes up
   with a cold cache.
2. The *provider* — the lowest-id other roster member — serializes its
   full cache (region table + every written record) and sends it unicast.
3. The joiner installs the snapshot atomically (it is not serving local
   readers yet) and marks itself warm.  Updates broadcast while the
   snapshot was in flight apply on top by last-writer-wins version order,
   so no write is lost during assimilation.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from ..micropacket import BROADCAST
from ..rostering import Roster
from ..sim import Counter, Event
from ..transport import Channel
from .network_cache import NetworkCache

if TYPE_CHECKING:  # pragma: no cover
    from ..node import AmpNode
    from ..transport import Messenger

__all__ = ["RefreshService"]

_OP_REQUEST = 1


class RefreshService:
    """Snapshot-based assimilation for one node's cache replica."""

    def __init__(self, node: "AmpNode", cache: NetworkCache, messenger: "Messenger"):
        self.node = node
        self.cache = cache
        self.messenger = messenger
        self.sim = node.sim
        self.counters = Counter()
        #: a node that has never joined (or re-joined after a crash)
        #: considers its replica cold until a refresh completes
        self.warm = False
        self._requested_for_round: Optional[int] = None
        #: fires each time a refresh completes (tests, assimilation)
        self.refreshed: Event = node.sim.event()
        self.on_warm: List[Callable[[], None]] = []

        messenger.on_signal(Channel.REFRESH, self._on_signal)
        messenger.on_message(Channel.REFRESH, self._on_snapshot)
        node.ring_up_listeners.append(self._on_ring_up)

    # --------------------------------------------------------------- joiner
    def mark_cold(self) -> None:
        """Called when the node crashes/loses its NIC memory."""
        self.warm = False
        self._requested_for_round = None

    def rebind(self, cache: NetworkCache) -> None:
        """Attach to a fresh (cold) replica after a crash."""
        self.cache = cache
        self.mark_cold()

    def mark_warm(self) -> None:
        """First-boot nodes with nothing to fetch start warm."""
        if not self.warm:
            self.warm = True
            self._fire_warm()

    def _on_ring_up(self, roster: Roster) -> None:
        if self.warm:
            return
        if roster.size < 2:
            # Alone and cold: nobody to refresh from.  Stay cold and ask
            # again when a bigger roster forms — declaring an empty
            # replica "warm" would let emptiness propagate later.
            return
        if self._requested_for_round == roster.round_no:
            return
        self._requested_for_round = roster.round_no
        self.counters.incr("refresh_requests")
        self.messenger.signal(
            BROADCAST, bytes([_OP_REQUEST]), Channel.REFRESH
        )

    def _on_snapshot(self, src: int, payload: bytes, channel: int) -> None:
        if self.warm:
            self.counters.incr("redundant_snapshots")
            return
        applied = self.cache.apply_snapshot(payload)
        self.warm = True
        self.counters.incr("snapshots_received")
        self.counters.incr("records_refreshed", applied)
        self.node.tracer.record(
            self.sim.now, "cache_refreshed", f"refresh-{self.node.node_id}",
            provider=src, records=applied, bytes=len(payload),
        )
        self._fire_warm()

    def _fire_warm(self) -> None:
        if not self.refreshed.triggered:
            self.refreshed.succeed(self.sim.now)
        self.refreshed = self.sim.event()
        for fn in self.on_warm:
            fn()

    # ------------------------------------------------------------- provider
    def _on_signal(self, src: int, payload: bytes) -> None:
        if src == self.node.node_id or payload[0] != _OP_REQUEST:
            return
        if not self.warm:
            return  # cold replicas must not propagate emptiness
        roster = self.node.roster
        if roster is None or src not in roster.members:
            return
        # Deterministic provider: lowest-id warm member other than the
        # requester.  Everyone can evaluate "lowest-id member"; cold
        # members simply declined above, and the common case (one joiner
        # into a warm ring) picks exactly one provider.
        others = [m for m in roster.members if m != src]
        if not others or self.node.node_id != min(others):
            return
        snapshot = self.cache.snapshot()
        self.counters.incr("snapshots_served")
        self.messenger.send(src, snapshot, Channel.REFRESH)
