"""Integration: control groups, application failover, no data loss
(slide 19), AmpDC RDMA and MPI-like collectives (slides 11-12)."""

import pytest

from repro import AmpNetCluster, ClusterConfig
from repro.hostapi import (
    APP_REGION,
    CheckpointedSequenceApp,
    MPIEndpoint,
    ReduceOp,
    SequenceLedger,
)
from repro.kernel import ControlGroupConfig


def make_cluster(n_nodes=6, n_switches=4, **kw):
    cfg = ClusterConfig(n_nodes=n_nodes, n_switches=n_switches, **kw)
    cluster = AmpNetCluster(config=cfg)
    cluster.start()
    return cluster


def settle(cluster, tours=20):
    cluster.run(until=cluster.sim.now + tours * cluster.tour_estimate_ns)


def sequence_group(cluster, members=(0, 1, 2), qual=None):
    ledger = SequenceLedger()
    config = ControlGroupConfig(
        name="seq",
        members=list(members),
        qualification=qual or {},
        region=APP_REGION,
    )
    groups = cluster.create_control_group(
        config, lambda node, group: CheckpointedSequenceApp(node, group, ledger)
    )
    return ledger, groups


# ------------------------------------------------------------ control group
def test_best_qualified_member_becomes_primary():
    cluster = make_cluster()
    ledger, groups = sequence_group(cluster, qual={0: 1, 1: 9, 2: 5})
    cluster.run_until_ring_up()
    settle(cluster, tours=50)
    assert groups[1].primary == 1
    assert all(g.primary == 1 for g in groups.values())
    assert ledger.acked  # the app is making progress
    assert all(n == 1 for _s, n in ledger.produced_by)


def test_qualification_tie_breaks_to_lowest_id():
    cluster = make_cluster()
    _ledger, groups = sequence_group(cluster, members=(2, 3, 4))
    cluster.run_until_ring_up()
    settle(cluster, tours=30)
    assert groups[2].primary == 2


def test_failover_on_primary_crash_no_data_loss():
    """The headline claim: primary dies, control passes, nothing lost."""
    cluster = make_cluster()
    ledger, groups = sequence_group(cluster, qual={0: 9, 1: 5, 2: 1})
    cluster.run_until_ring_up()
    settle(cluster, tours=100)  # let node 0 ack some work
    acked_before = ledger.last_acked
    assert acked_before > 0
    cluster.crash_node(0)
    cluster.run_until_reroster()
    settle(cluster, tours=300)
    # Node 1 (next best qualified) took over and continued the sequence.
    assert groups[1].primary == 1
    assert ledger.last_acked > acked_before
    ledger.verify_no_loss_no_fork()
    # Recovery resumed at or after everything previously acknowledged.
    app = groups[1].app
    assert app is not None and app.recovered_from >= acked_before


def test_double_failover_chain():
    cluster = make_cluster()
    ledger, groups = sequence_group(cluster, qual={0: 9, 1: 5, 2: 1})
    cluster.run_until_ring_up()
    settle(cluster, tours=100)
    cluster.crash_node(0)
    cluster.run_until_reroster()
    settle(cluster, tours=200)
    first_failover_acked = ledger.last_acked
    cluster.crash_node(1)
    cluster.run_until_reroster()
    settle(cluster, tours=300)
    assert groups[2].primary == 2
    assert ledger.last_acked > first_failover_acked
    ledger.verify_no_loss_no_fork()


def test_failover_period_delays_takeover():
    cluster = make_cluster()
    ledger = SequenceLedger()
    period = 5_000_000  # 5 ms, application defined
    config = ControlGroupConfig(
        name="slow", members=[0, 1], qualification={0: 2, 1: 1},
        failover_period_ns=period, region=APP_REGION,
    )
    groups = cluster.create_control_group(
        config, lambda n, g: CheckpointedSequenceApp(n, g, ledger)
    )
    cluster.run_until_ring_up()
    settle(cluster, tours=60)
    became = groups[1].became_primary
    crash_time = cluster.sim.now
    cluster.crash_node(0)
    cluster.run(until=became)
    # Detection + rostering + the full application-defined period.
    assert cluster.sim.now - crash_time >= period


def test_recovered_node_rejoins_group_as_standby():
    cluster = make_cluster()
    ledger, groups = sequence_group(cluster, qual={0: 9, 1: 5, 2: 1})
    cluster.run_until_ring_up()
    settle(cluster, tours=80)
    cluster.crash_node(0)
    cluster.run_until_reroster()
    settle(cluster, tours=150)
    cluster.recover_node(0)
    cluster.run_until_reroster()
    settle(cluster, tours=300)
    # Node 0 is best qualified again: it takes control back, with state.
    assert groups[0].primary == 0
    ledger.verify_no_loss_no_fork()


# -------------------------------------------------------------------- AmpDC
def test_rdma_write_into_registered_region():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    region = cluster.nodes[2].amp_dc.register_region("frames", 4096)
    handle = cluster.nodes[0].amp_dc.rdma_write(2, "frames", 128, b"pixels" * 10)
    settle(cluster, tours=40)
    assert handle.delivered.triggered
    assert region.read(128, 60) == b"pixels" * 10
    assert region.writes == 1


def test_rdma_unknown_region_counted():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    cluster.nodes[0].amp_dc.rdma_write(1, "nope", 0, b"x")
    settle(cluster, tours=40)
    assert cluster.nodes[1].amp_dc.counters["rdma_unknown_region"] == 1


def test_host_region_write_listener():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    region = cluster.nodes[3].amp_dc.register_region("mb", 256)
    hits = []
    region.on_write.append(lambda off, ln: hits.append((off, ln)))
    cluster.nodes[1].amp_dc.rdma_write(3, "mb", 16, b"abcd")
    settle(cluster, tours=40)
    assert hits == [(16, 4)]


# ---------------------------------------------------------------------- MPI
def test_mpi_send_recv():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    ranks = [0, 1, 2, 3]
    eps = {i: MPIEndpoint(cluster.nodes[i], ranks) for i in ranks}
    got = {}

    def receiver():
        data = yield from eps[1].recv(src=0, tag=7)
        got["data"] = data

    cluster.sim.process(receiver())
    eps[0].send(1, b"ring message", tag=7)
    settle(cluster, tours=40)
    assert got["data"] == b"ring message"


def test_mpi_barrier_synchronizes():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    ranks = [0, 1, 2, 3]
    eps = {i: MPIEndpoint(cluster.nodes[i], ranks) for i in ranks}
    exits = {}

    def member(i, delay):
        yield cluster.sim.timeout(delay)
        yield from eps[i].barrier()
        exits[i] = cluster.sim.now

    for i, delay in zip(ranks, (0, 100_000, 200_000, 400_000)):
        cluster.sim.process(member(i, delay))
    settle(cluster, tours=100)
    assert len(exits) == 4
    assert min(exits.values()) >= 400_000  # nobody exits before the laggard


def test_mpi_bcast_and_allreduce():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    ranks = [0, 1, 2, 3]
    eps = {i: MPIEndpoint(cluster.nodes[i], ranks) for i in ranks}
    results = {}

    def member(i):
        data = yield from eps[i].bcast(root=2, payload=b"model" if i == 2 else None)
        total = yield from eps[i].allreduce(i + 1, ReduceOp.SUM)
        biggest = yield from eps[i].allreduce(i + 1, ReduceOp.MAX)
        results[i] = (data, total, biggest)

    for i in ranks:
        cluster.sim.process(member(i))
    settle(cluster, tours=150)
    assert all(results[i] == (b"model", 10, 4) for i in ranks)


def test_mpi_gather_at_root():
    cluster = make_cluster(n_nodes=4, n_switches=2)
    cluster.run_until_ring_up()
    ranks = [0, 1, 2, 3]
    eps = {i: MPIEndpoint(cluster.nodes[i], ranks) for i in ranks}
    results = {}

    def member(i):
        out = yield from eps[i].gather(root=0, payload=bytes([i]) * 3)
        results[i] = out

    for i in ranks:
        cluster.sim.process(member(i))
    settle(cluster, tours=100)
    assert results[0] == {i: bytes([i]) * 3 for i in ranks}
    assert results[1] is None
