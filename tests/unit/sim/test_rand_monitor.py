"""Unit tests for seeded random streams and the trace/statistics helpers."""

import math

import pytest

from repro.sim import Counter, LatencyStat, SeededStreams, TimeSeries, Tracer, derive_seed


# ------------------------------------------------------------- SeededStreams
def test_streams_are_deterministic_per_name():
    a = SeededStreams(5).stream("traffic")
    b = SeededStreams(5).stream("traffic")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_independent_sequences():
    s = SeededStreams(5)
    x = [s.stream("a").random() for _ in range(5)]
    y = [s.stream("b").random() for _ in range(5)]
    assert x != y


def test_stream_is_cached_not_reseeded():
    s = SeededStreams(1)
    first = s.stream("w").random()
    second = s.stream("w").random()
    assert first != second  # continuing the same sequence


def test_derive_seed_stable_values():
    # Pinned so a Python upgrade that changed hashing would be caught.
    assert derive_seed(0, "x") == derive_seed(0, "x")
    assert derive_seed(0, "x") != derive_seed(1, "x")
    assert derive_seed(0, "x") != derive_seed(0, "y")


def test_fork_produces_derived_registry():
    s = SeededStreams(9)
    f1 = s.fork("node-1")
    f2 = s.fork("node-1")
    assert f1.master_seed == f2.master_seed
    assert f1.master_seed != s.master_seed


def test_negative_master_seed_rejected():
    with pytest.raises(ValueError):
        SeededStreams(-1)


# -------------------------------------------------------------------- Tracer
def test_tracer_records_and_selects():
    t = Tracer()
    t.record(10, "tx", "node-0", size=16)
    t.record(20, "rx", "node-1", size=16)
    t.record(30, "tx", "node-1", size=76)
    assert len(t.records) == 3
    assert [r.time for r in t.select(category="tx")] == [10, 30]
    assert [r.time for r in t.select(source="node-1")] == [20, 30]
    assert [r.time for r in t.select(since=20)] == [20, 30]


def test_tracer_mute_unmute():
    t = Tracer()
    t.mute("noise")
    t.record(1, "noise", "x")
    t.record(2, "signal", "x")
    t.unmute("noise")
    t.record(3, "noise", "x")
    assert [r.category for r in t.records] == ["signal", "noise"]


def test_tracer_disabled_records_nothing():
    t = Tracer(enabled=False)
    t.record(1, "tx", "x")
    assert t.records == []


def test_tracer_listener_sees_live_records():
    t = Tracer()
    seen = []
    t.subscribe(seen.append)
    t.record(5, "tx", "n")
    assert len(seen) == 1 and seen[0].time == 5


# ------------------------------------------------------------------- Counter
def test_counter_incr_and_missing_default():
    c = Counter()
    c.incr("drops")
    c.incr("drops", 4)
    assert c["drops"] == 5
    assert c["never"] == 0
    assert c.as_dict() == {"drops": 5}


# ---------------------------------------------------------------- TimeSeries
def test_timeseries_stats():
    ts = TimeSeries()
    for t, v in [(0, 1.0), (10, 3.0), (20, 2.0)]:
        ts.add(t, v)
    assert ts.mean() == pytest.approx(2.0)
    assert ts.maximum() == 3.0
    assert ts.last() == 2.0
    assert ts.rate() == pytest.approx(6.0 / 20)


def test_timeseries_empty_is_nan():
    ts = TimeSeries()
    assert math.isnan(ts.mean())
    assert math.isnan(ts.rate())


# --------------------------------------------------------------- LatencyStat
def test_latency_percentiles_exact():
    st = LatencyStat()
    st.extend(range(1, 101))  # 1..100
    assert st.percentile(0) == 1
    assert st.percentile(100) == 100
    assert st.percentile(50) == pytest.approx(50.5)
    assert st.count == 100
    assert st.mean() == pytest.approx(50.5)


def test_latency_percentile_range_check():
    st = LatencyStat()
    st.add(1)
    with pytest.raises(ValueError):
        st.percentile(101)


def test_latency_summary_keys():
    st = LatencyStat()
    st.extend([5, 10, 15])
    s = st.summary()
    assert set(s) == {"count", "mean", "min", "p50", "p99", "max"}
    assert s["min"] == 5 and s["max"] == 15


def test_latency_empty_stat():
    st = LatencyStat()
    assert math.isnan(st.mean())
    assert st.minimum() == 0 and st.maximum() == 0
    assert math.isnan(st.percentile(50))


def test_convergence_tracker_measures_repeated_incidents():
    """A peer that dies, recovers and dies again must be measurable per
    incident via ``since`` (regression: only the first-ever verdict used
    to be kept, so churn experiments lost every incident after the first)."""
    from repro.sim import ConvergenceTracker

    tracer = Tracer()
    tracker = ConvergenceTracker(tracer)
    tracer.record(100, "membership", "member-0", peer=7, status="DEAD")
    tracer.record(120, "membership", "member-1", peer=7, status="DEAD")
    tracer.record(500, "membership", "member-0", peer=7, status="ALIVE")
    tracer.record(900, "membership", "member-0", peer=7, status="DEAD")
    tracer.record(950, "membership", "member-1", peer=7, status="DEAD")

    assert tracker.time_to_detect(7, since=0) == 100
    assert tracker.time_to_converge(7, ["member-0", "member-1"], since=0) == 120
    # second incident, anchored after the recovery
    assert tracker.time_to_detect(7, since=600) == 300
    assert tracker.time_to_converge(7, ["member-0", "member-1"], since=600) == 350
    # an observer with no verdict after `since` blocks convergence
    assert tracker.time_to_converge(7, ["member-0", "member-9"], since=0) is None
