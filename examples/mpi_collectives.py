#!/usr/bin/env python3
"""MPI-style collectives over AmpNet (slide 12's MPI slot).

A four-rank job: broadcast a "model", do local work, allreduce the
results, gather timing at rank 0 — all over AmpIP-style messaging on the
insertion ring.  The point of running MPI on AmpNet (versus the era's
Ethernet) is that a fibre cut mid-job delays the collectives by a couple
of ring tours instead of killing the job: we cut one mid-allreduce to
show it.

Run:  python examples/mpi_collectives.py
"""

from repro import AmpNetCluster
from repro.analysis import fmt_ns
from repro.hostapi import MPIEndpoint, ReduceOp


def main() -> None:
    cluster = AmpNetCluster(n_nodes=4, n_switches=2, seed=5)
    cluster.start()
    cluster.run_until_ring_up()
    sim = cluster.sim

    ranks = [0, 1, 2, 3]
    eps = {i: MPIEndpoint(cluster.nodes[i], ranks) for i in ranks}
    results = {}

    def job(rank: int):
        ep = eps[rank]
        # Rank 2 owns the "model" and broadcasts it.
        model = yield from ep.bcast(root=2, payload=b"w=[1,2,3]" if rank == 2 else None)
        # Local work proportional to rank.
        yield sim.timeout(50_000 * (rank + 1))
        local = (rank + 1) ** 2
        # Global reduction.
        total = yield from ep.allreduce(local, ReduceOp.SUM)
        peak = yield from ep.allreduce(local, ReduceOp.MAX)
        yield from ep.barrier()
        stamp = sim.now.to_bytes(8, "little")
        timings = yield from ep.gather(root=0, payload=stamp)
        results[rank] = {
            "model": model,
            "sum": total,
            "max": peak,
            "timings": timings,
        }

    for rank in ranks:
        sim.process(job(rank))

    # Cut a fibre while the collectives are in flight.
    def saboteur():
        yield sim.timeout(120_000)
        roster = cluster.current_roster()
        sw = roster.hop_switch_from(1)
        print(f"t={fmt_ns(sim.now)}: cutting node 1's fibre to switch {sw} "
              "mid-collective")
        cluster.cut_link(1, sw)

    sim.process(saboteur())

    cluster.run(until=sim.now + 30_000_000)

    print(f"job finished at t={fmt_ns(sim.now)} despite the cut")
    for rank in ranks:
        r = results[rank]
        print(f"  rank {rank}: model={r['model']!r} sum={r['sum']} max={r['max']}")
    assert all(results[r]["sum"] == 1 + 4 + 9 + 16 for r in ranks)
    assert results[0]["timings"] is not None and len(results[0]["timings"]) == 4
    print("allreduce agrees on every rank: 30; gather at rank 0 complete")


if __name__ == "__main__":
    main()
