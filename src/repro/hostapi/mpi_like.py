"""MPI-like message passing over AmpNet (slide 12's MPI/PVM slot).

The paper's stack runs MPI over sockets over AmpIP; we provide the
message-passing semantics directly over the reliable messenger: blocking
point-to-point with tags, plus barrier / broadcast / gather / allreduce
collectives.  All calls are simulation processes (``yield from`` them).

A communicator's membership is fixed at creation (like MPI_COMM_WORLD);
collectives must be invoked in the same order by every member, exactly
as the MPI standard requires.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..micropacket import BROADCAST
from ..sim import Counter, Event
from ..transport import Channel

if TYPE_CHECKING:  # pragma: no cover
    from ..node import AmpNode

__all__ = ["MPIEndpoint", "ReduceOp"]

# message kinds
_PT2PT = 0
_BARRIER = 1
_BCAST = 2
_GATHER = 3
_ALLREDUCE = 4


class ReduceOp:
    """Reduction operators for allreduce."""

    SUM = staticmethod(lambda a, b: a + b)
    MAX = staticmethod(max)
    MIN = staticmethod(min)


def _encode(kind: int, coll_id: int, tag: int, payload: bytes) -> bytes:
    return (
        bytes([kind])
        + coll_id.to_bytes(4, "little")
        + tag.to_bytes(4, "little", signed=True)
        + payload
    )


def _decode(raw: bytes) -> Tuple[int, int, int, bytes]:
    return (
        raw[0],
        int.from_bytes(raw[1:5], "little"),
        int.from_bytes(raw[5:9], "little", signed=True),
        raw[9:],
    )


class MPIEndpoint:
    """One rank of the communicator, bound to an AmpNode."""

    def __init__(self, node: "AmpNode", ranks: List[int]):
        if node.node_id not in ranks:
            raise ValueError("node is not a member of this communicator")
        self.node = node
        self.sim = node.sim
        self.ranks = sorted(ranks)
        self.rank = node.node_id
        self.counters = Counter()

        #: received-but-unclaimed messages: (kind, coll_id, tag, src) queues
        self._inbox: Dict[Tuple[int, int, int, int], Deque[bytes]] = {}
        #: waiting receivers: same key -> events
        self._waiters: Dict[Tuple[int, int, int, int], List[Event]] = {}
        self._coll_seq: Dict[int, int] = {k: 0 for k in
                                          (_BARRIER, _BCAST, _GATHER, _ALLREDUCE)}
        node.messenger.on_message(Channel.MPI, self._on_message)

    @property
    def size(self) -> int:
        return len(self.ranks)

    # ------------------------------------------------------------ plumbing
    def _on_message(self, src: int, raw: bytes, channel: int) -> None:
        kind, coll_id, tag, payload = _decode(raw)
        key = (kind, coll_id, tag, src)
        self._inbox.setdefault(key, deque()).append(payload)
        waiters = self._waiters.get(key)
        if waiters:
            waiters.pop(0).succeed()

    def _take(self, kind: int, coll_id: int, tag: int, src: int):
        """Process: wait for and pop one matching message."""
        key = (kind, coll_id, tag, src)
        while True:
            queue = self._inbox.get(key)
            if queue:
                payload = queue.popleft()
                return payload
            ev = self.sim.event()
            self._waiters.setdefault(key, []).append(ev)
            yield ev

    def _post(self, dst: int, kind: int, coll_id: int, tag: int, payload: bytes):
        return self.node.messenger.send(
            dst, _encode(kind, coll_id, tag, payload), Channel.MPI
        )

    # ---------------------------------------------------------- point-to-point
    def send(self, dst: int, payload: bytes, tag: int = 0):
        """Post a message; returns the delivery handle (non-blocking)."""
        if dst not in self.ranks:
            raise ValueError(f"rank {dst} not in communicator")
        self.counters.incr("sends")
        return self._post(dst, _PT2PT, 0, tag, payload)

    def recv(self, src: int, tag: int = 0):
        """Blocking receive (process): returns the payload bytes."""
        self.counters.incr("recvs")
        payload = yield from self._take(_PT2PT, 0, tag, src)
        return payload

    # ------------------------------------------------------------ collectives
    def barrier(self):
        """Process: returns when every rank has entered the barrier."""
        coll_id = self._next(_BARRIER)
        self._post(BROADCAST, _BARRIER, coll_id, 0, b"\x01")
        for peer in self.ranks:
            if peer == self.rank:
                continue
            yield from self._take(_BARRIER, coll_id, 0, peer)
        self.counters.incr("barriers")

    def bcast(self, root: int, payload: Optional[bytes] = None):
        """Process: root supplies payload; every rank returns it."""
        coll_id = self._next(_BCAST)
        if self.rank == root:
            if payload is None:
                raise ValueError("root must supply a payload")
            self._post(BROADCAST, _BCAST, coll_id, 0, payload)
            result = payload
        else:
            result = yield from self._take(_BCAST, coll_id, 0, root)
        self.counters.incr("bcasts")
        return result

    def gather(self, root: int, payload: bytes):
        """Process: root returns {rank: payload}; others return None."""
        coll_id = self._next(_GATHER)
        if self.rank == root:
            out = {self.rank: payload}
            for peer in self.ranks:
                if peer == self.rank:
                    continue
                out[peer] = yield from self._take(_GATHER, coll_id, 0, peer)
            self.counters.incr("gathers")
            return out
        self._post(root, _GATHER, coll_id, 0, payload)
        self.counters.incr("gathers")
        return None

    def allreduce(self, value: int, op: Callable[[Any, Any], Any] = ReduceOp.SUM):
        """Process: reduce 64-bit signed ints across all ranks."""
        coll_id = self._next(_ALLREDUCE)
        mine = value.to_bytes(8, "little", signed=True)
        self._post(BROADCAST, _ALLREDUCE, coll_id, 0, mine)
        acc = value
        for peer in self.ranks:
            if peer == self.rank:
                continue
            raw = yield from self._take(_ALLREDUCE, coll_id, 0, peer)
            acc = op(acc, int.from_bytes(raw, "little", signed=True))
        self.counters.incr("allreduces")
        return acc

    def _next(self, kind: int) -> int:
        self._coll_seq[kind] += 1
        return self._coll_seq[kind]
