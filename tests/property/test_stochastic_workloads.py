"""Property tests for the seeded stochastic workload generators.

The determinism contract the scenario engine leans on:

* two clusters with the *same* master seed drive a stochastic stream to
  the *same* arrival instants, packet for packet;
* different master seeds produce different arrival processes;
* the realised mean rate of a Poisson stream matches its configured
  mean within sampling tolerance (sum of n exponentials concentrates
  as n grows: CV = 1/sqrt(n)).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AmpNetCluster, ClusterConfig
from repro.workloads import (
    BurstStream,
    InhomogeneousPoissonStream,
    PoissonStream,
    sinusoidal_profile,
)

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_cluster(seed):
    cluster = AmpNetCluster(
        config=ClusterConfig(n_nodes=4, n_switches=2, seed=seed)
    )
    cluster.start()
    cluster.run_until_ring_up()
    return cluster


def drive(seed, build, tours=800):
    """Build one stream on a fresh cluster and return its tx instants."""
    cluster = make_cluster(seed)
    stream = build(cluster)
    cluster.run(until=cluster.sim.now + tours * cluster.tour_estimate_ns)
    assert stream.stats.offered == stream.count, "stream did not finish"
    stream.close()
    return list(stream.tx_times)


def poisson(cluster):
    return PoissonStream(cluster, 0, 2, mean_interval_ns=4_000, count=60,
                         name="prop-poisson")


def burst(cluster):
    return BurstStream(cluster, 1, 3, burst_mean=5, intra_gap_ns=800,
                       off_mean_ns=20_000, count=60, name="prop-burst")


def ipoisson(cluster):
    profile = sinusoidal_profile(period_ns=600_000, floor=0.2)
    return InhomogeneousPoissonStream(
        cluster, 0, 3, peak_interval_ns=3_000, profile=profile, count=60,
        name="prop-ipoisson",
    )


@given(seed=st.integers(0, 50))
@SLOW
def test_same_seed_replays_identical_arrivals(seed):
    for build in (poisson, burst, ipoisson):
        assert drive(seed, build) == drive(seed, build)


@given(seed=st.integers(0, 50))
@SLOW
def test_different_seeds_diverge(seed):
    for build in (poisson, burst, ipoisson):
        assert drive(seed, build) != drive(seed + 1000, build)


@given(seed=st.integers(0, 20))
@SLOW
def test_poisson_hits_configured_mean_rate(seed):
    mean_ns, count = 3_000, 400
    times = drive(
        seed,
        lambda c: PoissonStream(c, 0, 2, mean_interval_ns=mean_ns,
                                count=count, name="prop-rate"),
        tours=800,
    )
    span = times[-1] - times[0]
    realised_mean = span / (count - 1)
    # CV of the mean of 399 exponentials ~ 5%; 20% is a >3-sigma band.
    assert 0.8 * mean_ns <= realised_mean <= 1.2 * mean_ns, realised_mean


def test_streams_are_independent_of_each_other():
    """Adding a second named stream must not shift the first one's
    arrivals (each draws from its own named rng stream)."""
    alone = drive(3, poisson)
    cluster = make_cluster(3)
    stream = poisson(cluster)
    other = burst(cluster)
    cluster.run(until=cluster.sim.now + 800 * cluster.tour_estimate_ns)
    stream.close()
    other.close()
    assert list(stream.tx_times) == alone
