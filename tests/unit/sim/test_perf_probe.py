"""repro.perf: accounting correctness and the no-observer-effect contract.

The kernel's event accounting must never change what the kernel does:
a run with a PerfProbe attached (even with per-layer classification on)
has to produce the identical event sequence, trace timeline and
counters as a run without one — measuring may not perturb.
"""

from repro import AmpNetCluster, ClusterConfig
from repro.perf import PerfProbe, PerfReport, layer_of
from repro.scenarios import get_scenario
from repro.scenarios.runner import ScenarioRunner, trace_digest
from repro.sim import Callback, Simulator


# ------------------------------------------------------------ accounting
def test_events_processed_counts_kernel_work():
    sim = Simulator()
    for k in range(5):
        sim.call_in(k * 10, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_probe_window_and_report_fields():
    sim = Simulator()
    hits = []
    for k in range(100):
        sim.call_in(k * 7, hits.append, k)
    probe = PerfProbe(sim, per_kind=True)
    probe.start()
    sim.run()
    report = probe.stop()
    assert report.events == 100
    assert report.sim_ns == 99 * 7
    assert report.wall_s > 0
    assert report.events_per_sec > 0
    assert sum(report.by_layer.values()) == 100
    # stop() detaches the observer so later runs are unobserved.
    assert sim.on_event is None
    payload = report.to_dict()
    assert payload["events"] == 100 and "by_layer" in payload
    # Scheduler occupancy rides along: the schedule drained, so nothing
    # is resident, and this workload (gaps of 7ns) never left the wheel.
    sched = payload["scheduler"]
    assert sched["wheel_entries"] == 0
    assert sched["overflow_entries"] == 0
    assert sched["overflow_spills"] == 0
    assert sched["wheel_slot_histogram"] == {}


def test_scheduler_snapshot_sees_resident_entries_and_spills():
    sim = Simulator()
    probe = PerfProbe(sim)
    probe.start()
    # Three entries in one slot, one in another, one past the wheel
    # horizon (the wheel covers [0, 8192) at t=0).
    for _ in range(3):
        sim.call_in(100, lambda: None)
    sim.call_in(200, lambda: None)
    sim.call_in(1_000_000, lambda: None)
    sched = probe.snapshot().scheduler
    assert sched["wheel_entries"] == 4
    assert sched["wheel_slots_occupied"] == 2
    assert sched["overflow_entries"] == 1
    assert sched["overflow_spills"] == 1
    assert sched["wheel_slot_histogram"] == {"1": 1, "3": 1}
    # Spills are a window delta: reopening the window zeroes them.
    probe.start()
    assert probe.snapshot().scheduler["overflow_spills"] == 0
    probe.stop()


def test_layer_classification():
    sim = Simulator()
    assert layer_of(Callback(test_events_processed_counts_kernel_work, ()))\
        .startswith("")  # a plain module function classifies without error
    timeout = sim.timeout(5)
    assert layer_of(timeout) == "sim.Timeout"


# --------------------------------------------- measuring must not perturb
def _run_quiet(seed: int, probed: bool):
    spec = get_scenario("quiet_ring").with_seed(seed)
    state = {}

    def hook(phase):
        if phase == "built" and probed:
            probe = state["probe"] = PerfProbe(
                runner.cluster.sim, per_kind=True
            )
            probe.start()

    runner = ScenarioRunner(spec, phase_hook=hook)
    result = runner.run()
    events = runner.cluster.sim.events_processed
    return result, events, state.get("probe")


def test_perf_accounting_does_not_change_the_event_sequence():
    """Same seed, probe on vs off: identical timeline, counters and
    event totals — the microbench determinism contract."""
    plain, plain_events, _ = _run_quiet(11, probed=False)
    probed, probed_events, probe = _run_quiet(11, probed=True)
    assert probed.trace_digest == plain.trace_digest
    assert probed.counters == plain.counters
    assert probed_events == plain_events
    report = probe.stop()
    assert report.events > 0
    # The per-layer split accounts for every observed entry and sees the
    # hot layers of the stack.
    assert sum(report.by_layer.values()) == report.events
    assert any(layer.startswith("phys.link") for layer in report.by_layer)
    assert any(layer.startswith("ring.mac") for layer in report.by_layer)
