"""Availability timelines: human-readable event histories from traces.

Operators of a high-availability system live and die by "what happened,
in order".  This module folds a cluster's trace into a single annotated
timeline of availability-relevant events — faults, rostering triggers,
roster installs, certifications, cache refreshes, control-group
takeovers — with per-event deltas, which is how the examples and the
EXPERIMENTS narrative show a failover at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from .report import fmt_ns

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import AmpNetCluster

__all__ = ["TimelineEvent", "availability_timeline", "render_timeline"]

#: trace categories that matter to an availability story, with labels
_CATEGORIES = {
    "fault": "FAULT",
    "roster_trigger": "DETECT",
    "ring_down": "RING DOWN",
    "roster_commit": "COMMIT",
    "roster_installed": "RING UP",
    "ring_certified": "CERTIFIED",
    "cache_refreshed": "REFRESH",
    "cg_primary": "TAKEOVER",
    "membership": "MEMBER",
}


@dataclass(frozen=True)
class TimelineEvent:
    time: int
    label: str
    source: str
    detail: str


def _detail(category: str, data: dict) -> str:
    if category == "fault":
        target = data.get("target")
        switch = data.get("switch")
        if data.get("group") is not None:
            where = (
                f"nodes {list(data['group'])} keep switches "
                f"{list(data.get('switch_group') or ())}"
            )
        elif switch is None:
            where = f"node {target}"
        else:
            where = f"node {target}/sw {switch}"
        return f"{data.get('kind')} ({where})"
    if category == "roster_trigger":
        return str(data.get("reason", ""))
    if category == "roster_installed":
        return (
            f"round {data.get('round')}, {data.get('size')} members, "
            f"{fmt_ns(data.get('elapsed_ns', 0))} after trigger"
        )
    if category == "roster_commit":
        return f"round {data.get('round')}: members {list(data.get('members', ()))}"
    if category == "ring_certified":
        return f"round {data.get('round')}"
    if category == "cache_refreshed":
        return (
            f"{data.get('records')} records ({data.get('bytes')} B) "
            f"from node {data.get('provider')}"
        )
    if category == "cg_primary":
        verb = "promoted" if data.get("promoted") else "initial primary"
        return f"group {data.get('group')}: {verb}"
    if category == "ring_down":
        return str(data.get("reason", ""))
    if category == "membership":
        return (
            f"peer {data.get('peer')} -> {data.get('status')} "
            f"(inc {data.get('incarnation')}, {data.get('why', '')})"
        )
    return ""  # pragma: no cover


def availability_timeline(
    cluster: "AmpNetCluster",
    since: int = 0,
    dedupe_installs: bool = True,
) -> List[TimelineEvent]:
    """Extract the ordered availability events from the cluster trace.

    ``dedupe_installs`` keeps only the first RING UP / COMMIT per round
    (every node records one; the timeline wants the moment, not the
    chorus).
    """
    events: List[TimelineEvent] = []
    seen_rounds = {"roster_installed": set(), "roster_commit": set(),
                   "ring_certified": set(), "ring_down": set()}
    for record in cluster.tracer.records:
        if record.time < since or record.category not in _CATEGORIES:
            continue
        if dedupe_installs and record.category in seen_rounds:
            key = record.data.get("round", record.data.get("reason"))
            if key in seen_rounds[record.category]:
                continue
            seen_rounds[record.category].add(key)
        events.append(
            TimelineEvent(
                time=record.time,
                label=_CATEGORIES[record.category],
                source=record.source,
                detail=_detail(record.category, record.data),
            )
        )
    events.sort(key=lambda e: e.time)
    return events


def render_timeline(
    events: List[TimelineEvent], title: str = "Availability timeline"
) -> str:
    """Fixed-width rendering with absolute times and inter-event deltas."""
    lines = [title, "=" * len(title)]
    prev: Optional[int] = None
    for ev in events:
        delta = "" if prev is None else f"(+{fmt_ns(ev.time - prev)})"
        lines.append(
            f"{fmt_ns(ev.time):>12}  {delta:>12}  {ev.label:<10} "
            f"{ev.source:<12} {ev.detail}"
        )
        prev = ev.time
    if not events:
        lines.append("(no availability events)")
    return "\n".join(lines)
