"""Switch forwarding/flooding and redundant topology builder tests."""

import pytest

from repro.micropacket import MicroPacket, MicroPacketType
from repro.phys import (
    Port,
    Switch,
    build_dual_redundant,
    build_quad_redundant,
    build_switched,
    frame_for,
    ring_tour_estimate_ns,
)
from repro.phys.link import Fiber
from repro.rostering import encode_explore
from repro.sim import Simulator


def data_pkt(src=0, dst=1):
    return MicroPacket(ptype=MicroPacketType.DATA, src=src, dst=dst, payload=b"x")


def switch_with_endpoints(sim, n=4):
    """A switch with n external ports, each wired to a capture port."""
    sw = Switch(sim, 0, n_ports=n)
    eps = []
    inboxes = []
    for i in range(n):
        ep = Port(sim, f"ep{i}")
        fiber = Fiber(sim, ep, sw.ports[i], 10.0)
        sw.attach_fiber(fiber)
        box = []
        ep.set_handlers(on_frame=lambda f, p, b=box: b.append(f))
        eps.append(ep)
        inboxes.append(box)
    return sw, eps, inboxes


# ----------------------------------------------------------------- switching
def test_ring_map_forwards_between_ports():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    sw.configure_ring({0: 1, 1: 2, 2: 3, 3: 0})
    eps[0].send(frame_for(data_pkt()))
    sim.run()
    assert len(boxes[1]) == 1
    assert all(not b for i, b in enumerate(boxes) if i != 1)


def test_unmapped_ingress_drops_and_counts():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    eps[0].send(frame_for(data_pkt()))
    sim.run()
    assert all(not b for b in boxes)
    assert sw.counters["no_route_drop"] == 1


def test_ring_map_validation():
    sim = Simulator()
    sw, _eps, _boxes = switch_with_endpoints(sim)
    with pytest.raises(ValueError):
        sw.configure_ring({0: 9})


def test_failed_switch_forwards_nothing():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    sw.configure_ring({0: 1})
    sw.fail()
    sim.run()  # let carrier transitions settle
    assert eps[0].send(frame_for(data_pkt())) is False
    sim.run()
    assert all(not b for b in boxes)


def test_switch_repair_restores_carrier():
    sim = Simulator()
    sw, eps, _boxes = switch_with_endpoints(sim)
    sw.fail()
    sim.run()
    assert not eps[0].carrier_up
    sw.repair()
    sim.run()
    assert eps[0].carrier_up


# ------------------------------------------------------------------ flooding
def test_rostering_frame_floods_to_all_other_ports():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    eps[0].send(frame_for(encode_explore(origin=0, round_no=1)))
    sim.run()
    assert not boxes[0]
    assert all(len(boxes[i]) == 1 for i in (1, 2, 3))


def test_flood_duplicate_suppressed():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    pkt = encode_explore(origin=0, round_no=1)
    eps[0].send(frame_for(pkt))
    eps[1].send(frame_for(pkt))  # same key arriving elsewhere
    sim.run()
    total = sum(len(b) for b in boxes)
    assert total == 3
    assert sw.counters["flood_duplicate"] == 1


def test_flood_different_round_not_suppressed():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    eps[0].send(frame_for(encode_explore(origin=0, round_no=1)))
    eps[0].send(frame_for(encode_explore(origin=0, round_no=2)))
    sim.run()
    assert sum(len(b) for b in boxes) == 6


def test_explore_hop_count_does_not_defeat_suppression():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    eps[0].send(frame_for(encode_explore(origin=0, round_no=1, hops=0)))
    eps[1].send(frame_for(encode_explore(origin=0, round_no=1, hops=3)))
    sim.run()
    assert sum(len(b) for b in boxes) == 3


def test_flood_skips_dark_ports():
    sim = Simulator()
    sw, eps, boxes = switch_with_endpoints(sim)
    sw.attached_fibers[2].cut()
    sim.run()
    eps[0].send(frame_for(encode_explore(origin=0, round_no=1)))
    sim.run()
    assert len(boxes[1]) == 1 and len(boxes[3]) == 1
    assert not boxes[2]


# ---------------------------------------------------------------- topologies
def test_quad_redundant_matches_slide_14():
    sim = Simulator()
    topo = build_quad_redundant(sim)
    assert topo.n_nodes == 6
    assert len(topo.switches) == 4
    assert len(topo.fibers) == 24  # full bipartite 6x4
    for i in range(6):
        assert len(topo.ports_of(i)) == 4


def test_dual_redundant_has_two_switches():
    sim = Simulator()
    topo = build_dual_redundant(sim, n_nodes=4)
    assert len(topo.switches) == 2
    assert len(topo.fibers) == 8


def test_builder_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        build_switched(sim, 1, 2)
    with pytest.raises(ValueError):
        build_switched(sim, 4, 5)


def test_live_attachment_ground_truth():
    sim = Simulator()
    topo = build_quad_redundant(sim)
    live = topo.live_attachment()
    assert all(live[k] == set(range(6)) for k in range(4))
    topo.cut_link(2, 1)
    topo.fail_switch(3)
    live = topo.live_attachment()
    assert live[1] == {0, 1, 3, 4, 5}
    assert live[3] == set()
    assert live[0] == set(range(6))


def test_node_dark_removes_node_from_all_switches():
    sim = Simulator()
    topo = build_quad_redundant(sim)
    topo.node_dark(4)
    live = topo.live_attachment()
    assert all(4 not in live[k] for k in range(4))
    topo.node_lit(4)
    live = topo.live_attachment()
    assert all(4 in live[k] for k in range(4))


def test_cut_and_restore_link_roundtrip():
    sim = Simulator()
    topo = build_dual_redundant(sim, n_nodes=3)
    topo.cut_link(0, 0)
    assert 0 not in topo.live_attachment()[0]
    topo.restore_link(0, 0)
    assert 0 in topo.live_attachment()[0]


# --------------------------------------------------------------- tour model
def test_ring_tour_estimate_scales_with_nodes_and_fiber():
    t_small = ring_tour_estimate_ns(4, 50.0)
    t_nodes = ring_tour_estimate_ns(8, 50.0)
    t_fiber = ring_tour_estimate_ns(4, 5000.0)
    assert t_nodes == 2 * t_small
    assert t_fiber > 10 * t_small


def test_ring_tour_estimate_millisecond_band_for_campus_fiber():
    """Slide 16: 1-2 ms depending on node count and fibre length.

    Two tours over a 16-node segment with 10 km runs must land in the
    millisecond band.
    """
    two_tours = 2 * ring_tour_estimate_ns(16, 10_000.0)
    assert 1_000_000 <= two_tours <= 5_000_000
