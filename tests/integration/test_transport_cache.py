"""Integration: reliable messaging, cache replication, seqlock, refresh,
network semaphores — the slide 9/10/18 machinery end to end."""

import pytest

from repro import AmpNetCluster, ClusterConfig
from repro.cache import RegionSpec
from repro.micropacket import BROADCAST
from repro.transport import Channel

TEST_CHANNEL = 10  # unclaimed by any built-in service


REGIONS = [RegionSpec(region_id=1, name="state", n_records=32, record_size=64)]


def make_cluster(n_nodes=4, n_switches=2, **kw):
    cfg = ClusterConfig(
        n_nodes=n_nodes, n_switches=n_switches, regions=list(REGIONS), **kw
    )
    cluster = AmpNetCluster(config=cfg)
    cluster.start()
    cluster.run_until_ring_up()
    return cluster


def settle(cluster, tours=20):
    cluster.run(until=cluster.sim.now + tours * cluster.tour_estimate_ns)


# ------------------------------------------------------------- messaging
def test_unicast_message_delivery():
    cluster = make_cluster()
    got = []
    cluster.nodes[2].messenger.on_message(
        TEST_CHANNEL, lambda src, data, ch: got.append((src, data))
    )
    payload = bytes(range(200))
    handle = cluster.nodes[0].messenger.send(2, payload, TEST_CHANNEL)
    settle(cluster)
    assert got == [(0, payload)]
    assert handle.delivered.triggered


def test_broadcast_message_reaches_all_other_nodes():
    cluster = make_cluster()
    got = {i: [] for i in cluster.nodes}
    for i, node in cluster.nodes.items():
        node.messenger.on_message(
            TEST_CHANNEL, lambda src, data, ch, i=i: got[i].append(data)
        )
    cluster.nodes[1].messenger.send(BROADCAST, b"hello world", TEST_CHANNEL)
    settle(cluster)
    for i in cluster.nodes:
        assert len(got[i]) == (0 if i == 1 else 1)


def test_large_message_fragments_and_reassembles():
    cluster = make_cluster()
    got = []
    cluster.nodes[3].messenger.on_message(
        TEST_CHANNEL, lambda src, data, ch: got.append(data)
    )
    payload = bytes(i % 251 for i in range(5000))  # 79 fragments
    cluster.nodes[0].messenger.send(3, payload, TEST_CHANNEL)
    settle(cluster, tours=60)
    assert got and got[0] == payload


def test_signal_delivery():
    cluster = make_cluster()
    got = []
    cluster.nodes[1].messenger.on_signal(
        TEST_CHANNEL, lambda src, payload: got.append((src, payload))
    )
    cluster.nodes[3].messenger.signal(1, b"DOORBELL", TEST_CHANNEL)
    settle(cluster)
    assert got == [(3, b"DOORBELL")]


def test_message_survives_ring_failure_midflight():
    """The no-data-loss mechanism: unconfirmed fragments replay after
    the roster heals."""
    cluster = make_cluster(n_nodes=6, n_switches=4)
    got = []
    cluster.nodes[5].messenger.on_message(
        TEST_CHANNEL, lambda src, data, ch: got.append(data)
    )
    payload = bytes(i % 256 for i in range(8000))
    handle = cluster.nodes[0].messenger.send(5, payload, TEST_CHANNEL)
    # Cut node 0's active hop while fragments are streaming.
    roster = cluster.current_roster()
    cluster.run(until=cluster.sim.now + cluster.tour_estimate_ns // 2)
    cluster.cut_link(0, roster.hop_switch_from(0))
    cluster.run_until_reroster()
    settle(cluster, tours=120)
    assert got and got[0] == payload
    assert handle.delivered.triggered
    sender = cluster.nodes[0].messenger
    assert sender.counters["fragments_retransmitted"] >= 0  # replay path exists


# ------------------------------------------------------------ cache basics
def test_cache_write_replicates_everywhere():
    cluster = make_cluster()
    cluster.nodes[0].cache.write("state", 3, b"the truth")
    settle(cluster)
    for node in cluster.nodes.values():
        ok, data, _v = node.cache.try_read("state", 3)
        assert ok and data[:9] == b"the truth"


def test_cache_last_writer_wins_convergence():
    cluster = make_cluster()
    cluster.nodes[0].cache.write("state", 0, b"from-zero")
    settle(cluster, tours=30)
    cluster.nodes[2].cache.write("state", 0, b"from-two!")
    settle(cluster, tours=30)
    values = set()
    for node in cluster.nodes.values():
        ok, data, _ = node.cache.try_read("state", 0)
        assert ok
        values.add(bytes(data[:9]))
    assert values == {b"from-two!"}


def test_concurrent_writes_converge_to_single_value():
    cluster = make_cluster()
    for i in range(4):
        cluster.nodes[i].cache.write("state", 7, f"writer-{i}".encode())
    settle(cluster, tours=60)
    finals = {
        bytes(node.cache.try_read("state", 7)[1]) for node in cluster.nodes.values()
    }
    assert len(finals) == 1  # everyone agrees, whoever won


def test_seqlock_read_process_returns_stable_data():
    cluster = make_cluster()
    result = {}

    def reader():
        data = yield from cluster.nodes[1].cache.read("state", 5)
        result["data"] = data

    cluster.nodes[0].cache.write("state", 5, b"stable")
    settle(cluster)
    cluster.sim.process(reader())
    settle(cluster, tours=2)
    assert result["data"][:6] == b"stable"


def test_dynamic_region_creation_replicates():
    cluster = make_cluster()
    spec = RegionSpec(region_id=9, name="dyn", n_records=4, record_size=16)
    cluster.nodes[2].cache.define_region(spec)
    cluster.nodes[2].cache.write("dyn", 1, b"dynamic!")
    settle(cluster, tours=40)
    for node in cluster.nodes.values():
        assert node.cache.has_region("dyn")
        ok, data, _ = node.cache.try_read("dyn", 1)
        assert ok and data[:8] == b"dynamic!"


# --------------------------------------------------------------- refresh
def test_rejoining_node_refreshes_cache():
    cluster = make_cluster(n_nodes=6, n_switches=4)
    cluster.nodes[0].cache.write("state", 10, b"precious data")
    settle(cluster)
    cluster.crash_node(3)
    cluster.run_until_reroster()
    # Write more while node 3 is dead.
    cluster.nodes[1].cache.write("state", 11, b"written while dead")
    settle(cluster)
    assert cluster.nodes[3].cache.version_of("state", 10) == (0, 0)  # wiped
    cluster.recover_node(3)
    cluster.run_until_reroster()
    settle(cluster, tours=100)
    assert cluster.nodes[3].refresh.warm
    ok, data, _ = cluster.nodes[3].cache.try_read("state", 10)
    assert ok and data[:13] == b"precious data"
    ok, data, _ = cluster.nodes[3].cache.try_read("state", 11)
    assert ok and data[:18] == b"written while dead"


# -------------------------------------------------------------- semaphores
def test_semaphore_mutual_exclusion():
    cluster = make_cluster()
    sim = cluster.sim
    holder_log = []

    def worker(node_id):
        svc = cluster.nodes[node_id].sems
        ok = yield from svc.acquire(5)
        assert ok
        holder_log.append(("acq", node_id, sim.now))
        yield sim.timeout(50_000)
        holder_log.append(("rel", node_id, sim.now))
        svc.release(5)

    for nid in range(4):
        sim.process(worker(nid))
    settle(cluster, tours=200)
    # All four eventually held it, and critical sections never overlap.
    acquires = [e for e in holder_log if e[0] == "acq"]
    assert len(acquires) == 4
    events = sorted(holder_log, key=lambda e: (e[2], e[0] == "acq"))
    depth = 0
    for kind, _nid, _t in events:
        depth += 1 if kind == "acq" else -1
        assert 0 <= depth <= 1


def test_semaphore_release_grants_next_waiter_fifo():
    cluster = make_cluster()
    sim = cluster.sim
    order = []

    def worker(node_id, start_delay):
        yield sim.timeout(start_delay)
        svc = cluster.nodes[node_id].sems
        ok = yield from svc.acquire(9)
        assert ok
        order.append(node_id)
        yield sim.timeout(20_000)
        svc.release(9)

    sim.process(worker(1, 0))
    sim.process(worker(2, 2_000))
    sim.process(worker(3, 4_000))
    settle(cluster, tours=200)
    assert order == [1, 2, 3]


def test_semaphore_acquire_timeout():
    cluster = make_cluster()
    sim = cluster.sim
    outcome = {}

    def holder():
        ok = yield from cluster.nodes[0].sems.acquire(2)
        assert ok  # never released

    def contender():
        yield sim.timeout(10_000)
        ok = yield from cluster.nodes[1].sems.acquire(2, timeout_ns=200_000)
        outcome["got"] = ok

    sim.process(holder())
    sim.process(contender())
    settle(cluster, tours=100)
    assert outcome["got"] is False


def test_lock_held_by_crashed_node_is_broken():
    cluster = make_cluster(n_nodes=6, n_switches=4)
    sim = cluster.sim
    got = {}

    def holder():
        ok = yield from cluster.nodes[3].sems.acquire(1)
        got["holder"] = ok

    sim.process(holder())
    settle(cluster, tours=50)
    assert got.get("holder")
    cluster.crash_node(3)
    cluster.run_until_reroster()
    settle(cluster, tours=50)

    def contender():
        ok = yield from cluster.nodes[1].sems.acquire(1, timeout_ns=50_000_000)
        got["contender"] = ok

    sim.process(contender())
    settle(cluster, tours=200)
    assert got.get("contender") is True
