"""Synthetic workloads: message streams, file streams, broadcast storms,
and seeded stochastic arrival processes."""

from .generators import (
    AllToAllBroadcast,
    FileStream,
    MessageStream,
    StreamStats,
    run_slide7_mixed_workload,
)
from .stochastic import (
    BurstStream,
    InhomogeneousPoissonStream,
    PoissonStream,
    ramp_profile,
    sinusoidal_profile,
)

__all__ = [
    "AllToAllBroadcast",
    "BurstStream",
    "FileStream",
    "InhomogeneousPoissonStream",
    "MessageStream",
    "PoissonStream",
    "StreamStats",
    "ramp_profile",
    "run_slide7_mixed_workload",
    "sinusoidal_profile",
]
