"""P4: mesh-scale routing — crossing premium, hub failover, ad growth.

Four experiments over the hierarchical (area) tier, one seeded run
each, published as a single emission:

* **crossing premium** — the same reliable stream staying local,
  crossing one hub (intra-area), and crossing hub + border + hub
  (inter-area).  Each tier of the hierarchy adds a store-and-forward
  premium; the table pins the ordering.
* **hub failover convergence** — the designated hub of an area with a
  redundant spoke is power-failed under inter-area load.  Convergence
  is advertisement-driven exactly as in P3; no crossing may be
  confirmed-and-lost.
* **ad bytes vs segment count** — a 3-area mesh swept over
  segments-per-area, measured with area summarization (v3 ads) and
  with the same topology flattened to area 0 (flat per-segment rows).
  The pinned figure is the mean routing-ad size: the bytes one ring
  carries per advertise period per attached router.  Flat ads grow
  linearly in the segment count; the summarized curve must grow
  *sublinearly* — the scaling claim the area tier exists for.
* **1k-node throughput probe** — the ROADMAP's missing pinned
  events/sec row: a PerfProbe window over the steady-state mesh_1k
  topology.  The window's event count and scheduler occupancy are
  deterministic (strict tolerance); events/sec is wall-derived and
  loosely tolerated.

All latencies and window bounds are simulated nanoseconds.
"""

from dataclasses import replace

from repro.analysis import render_table
from repro.perf import PerfProbe
from repro.routing import RoutedCluster, RoutedClusterConfig, RouterConfig
from repro.workloads import MessageStream

import harness

CHANNEL = 13
NODES = 8              # per segment, small-mesh experiments
COUNT = 30             # messages per stream
ADVERTISE_TOURS = 8
MISS_PERIODS = 3
SWEEP_SPA = (2, 3, 5)  # 3 areas -> K = 6, 9, 15 segments
MEASURE_PERIODS = 10


def build_mesh(n_areas, spa, nodes, *, redundant=False, flat=False,
               cadence=ADVERTISE_TOURS, seed=7):
    cfg = RoutedClusterConfig.area_mesh(
        n_areas, spa, nodes, redundant_spokes=redundant, seed=seed,
        trace=False,
        router=RouterConfig(segments=(0, 1),
                            advertise_period_tours=cadence,
                            miss_deadline_periods=MISS_PERIODS),
    )
    if flat:
        # Same topology, no hierarchy: every router in area 0 advertises
        # flat per-segment rows instead of area summaries.
        cfg = replace(cfg, routers=[replace(r, area=0) for r in cfg.routers])
    cluster = RoutedCluster(cfg)
    cluster.start()
    cluster.run_until_ring_up()
    return cluster


def settle(cluster, tours):
    cluster.run(until=cluster.sim.now + tours * cluster.tour_estimate_ns)


def run_stream(cluster, src, dst, name):
    tour = cluster.tour_estimate_ns
    stream = MessageStream(
        cluster, src=src, dst=dst, interval_ns=12 * tour, count=COUNT,
        channel=CHANNEL, name=name, reliable=True,
    )
    deadline = cluster.sim.now + 6000 * tour
    while stream.stats.delivered < COUNT and cluster.sim.now < deadline:
        cluster.run(until=cluster.sim.now + 50 * tour)
    stream.close()
    return stream.stats


# ------------------------------------------------------------ experiments


def exp_crossing_premium():
    """Local vs intra-area vs inter-area reliable delivery."""
    cluster = build_mesh(2, 2, NODES)
    settle(cluster, 5 * ADVERTISE_TOURS)
    cases = (
        ("local", (0, 1), (0, 5)),          # same ring
        ("intra_area", (0, 1), (1, 5)),     # one hub crossing
        ("inter_area", (0, 1), (3, 5)),     # hub + border + hub
    )
    stats = {name: run_stream(cluster, src, dst, f"p4-{name}")
             for name, src, dst in cases}
    assert all(s.delivered == COUNT for s in stats.values())
    assert cluster.router_drop_count() == 0
    means = {name: s.latency.mean() for name, s in stats.items()}
    # Each hierarchy tier crossed adds latency — the shape this pins.
    assert means["local"] < means["intra_area"] < means["inter_area"]
    return stats, means


def exp_hub_failover():
    """Crash the designated hub of area 1 under inter-area load.

    Runs at the router's *default* advertise cadence (50 tours): the
    crash also kills the hub's gateway nodes, so both of its rings
    re-roster around the corpses, and at the mesh scenarios' fast
    8-tour cadence that fixed re-roster time — not the advertisement
    protocol — dominates the clock.  The bound is the P3 contract
    widened for depth: past the miss deadline the surviving root's
    claim still has to relay across the border tier (hub -> border ->
    standby, one advertise period per hop) while both orphaned rings
    re-roster, so convergence lands within ``2 * (miss_deadline + 2)``
    periods instead of P3's single-hop ``miss_deadline + 2``.
    """
    cluster = build_mesh(2, 2, NODES, redundant=True, cadence=None)
    settle(cluster, 2 * 50)
    assert cluster.spanning_tree_converged()
    tour = cluster.tour_estimate_ns
    hub_idx = next(
        i for i, r in enumerate(cluster.routers)
        if r.config.priority == 64 and r.config.area == 1
    )
    period = cluster.routers[hub_idx].advertise_period_ns

    # Inter-area stream that transits the doomed hub, in flight across
    # the crash.
    stream = MessageStream(
        cluster, src=(1, 2), dst=(3, 5), interval_ns=12 * tour,
        count=COUNT, channel=CHANNEL, name="p4-failover", reliable=True,
    )
    cluster.run(until=cluster.sim.now + COUNT * 4 * tour)
    t_crash = cluster.sim.now
    cluster.crash_router(hub_idx)

    deadline = t_crash + 3 * (MISS_PERIODS + 2) * period
    while not cluster.spanning_tree_converged() and cluster.sim.now < deadline:
        cluster.run(until=cluster.sim.now + tour)
    assert cluster.spanning_tree_converged()
    failover_ns = cluster.sim.now - t_crash
    assert failover_ns <= 2 * (MISS_PERIODS + 2) * period

    drain_deadline = cluster.sim.now + 6000 * tour
    while stream.stats.delivered < COUNT and cluster.sim.now < drain_deadline:
        cluster.run(until=cluster.sim.now + 50 * tour)
    stream.close()
    lost = stream.stats.offered - stream.stats.delivered
    assert lost == 0, f"{lost} inter-area crossings confirmed-and-lost"
    return failover_ns, period, stream.stats


def measure_ad_bytes(cluster):
    """(bytes per period, mean bytes per ad) over the whole mesh.

    The mean is the wire figure: one router port sends one ad per
    advertise period, so mean ad size is exactly the routing-ad load
    each ring carries per attached router per period.
    """
    settle(cluster, 3 * ADVERTISE_TOURS)          # past the startup burst
    b0 = sum(r.counters.get("ad_bytes_tx", 0) for r in cluster.routers)
    n0 = sum(r.counters.get("ads_tx", 0) for r in cluster.routers)
    settle(cluster, MEASURE_PERIODS * ADVERTISE_TOURS)
    b1 = sum(r.counters.get("ad_bytes_tx", 0) for r in cluster.routers)
    n1 = sum(r.counters.get("ads_tx", 0) for r in cluster.routers)
    return (b1 - b0) / MEASURE_PERIODS, (b1 - b0) / (n1 - n0)


def exp_ad_scaling():
    """v3 summaries vs flat rows as the segment count grows."""
    curve = {}
    for spa in SWEEP_SPA:
        k = 3 * spa
        curve[k] = {
            "v3": measure_ad_bytes(build_mesh(3, spa, NODES)),
            "flat": measure_ad_bytes(build_mesh(3, spa, NODES, flat=True)),
        }
    # Hierarchy pays off as soon as areas span multiple segments...
    for k in (9, 15):
        assert curve[k]["v3"][1] < curve[k]["flat"][1], (
            f"K={k}: v3 ad {curve[k]['v3'][1]} >= flat {curve[k]['flat'][1]}"
        )
    # ...and the summarized ad is sublinear in segment count: 2.5x the
    # segments must cost strictly less than 2.5x the bytes per ad.
    growth = curve[15]["v3"][1] / curve[6]["v3"][1]
    assert growth < 15 / 6, f"ad bytes grew {growth:.2f}x over 2.5x segments"
    return curve, growth


def exp_scale_probe():
    """PerfProbe window over the steady-state 1k-node mesh."""
    cluster = build_mesh(3, 5, 68, redundant=True)
    settle(cluster, 20)                            # steady state
    probe = PerfProbe(cluster.sim, per_kind=True)
    probe.start()
    settle(cluster, 10)                            # measurement window
    report = probe.stop()
    n_nodes = len(cluster.nodes)
    assert n_nodes >= 1_000
    assert report.events > 0
    return n_nodes, report


# ------------------------------------------------------------------ test


def test_p4_mesh_scale(benchmark, publish, publish_json):
    def run_all():
        return (exp_crossing_premium(), exp_hub_failover(),
                exp_ad_scaling(), exp_scale_probe())

    (crossing_stats, means), (failover_ns, period, fo_stats), \
        (curve, growth), (n_nodes, report) = benchmark.pedantic(
            run_all, rounds=1, iterations=1
        )

    columns = ["Experiment", "Case", "Metric", "Value"]
    rows = []
    for name, stats in crossing_stats.items():
        rows.append(["crossing", name, "mean_ns",
                     round(stats.latency.mean(), 1)])
        rows.append(["crossing", name, "p95_ns",
                     round(stats.latency.percentile(95), 1)])
    rows.append(["failover", "hub_crash", "convergence_ns", failover_ns])
    rows.append(["failover", "hub_crash", "delivered", fo_stats.delivered])
    for k, pair in sorted(curve.items()):
        rows.append(["ad_bytes", f"K={k}", "v3_bytes_per_ad",
                     round(pair["v3"][1], 1)])
        rows.append(["ad_bytes", f"K={k}", "flat_bytes_per_ad",
                     round(pair["flat"][1], 1)])
        rows.append(["ad_bytes", f"K={k}", "v3_bytes_per_period",
                     round(pair["v3"][0], 1)])
    sched = report.scheduler
    rows.append(["scale_1k", "probe", "window_events", report.events])
    rows.append(["scale_1k", "probe", "window_sim_ns", report.sim_ns])
    rows.append(["scale_1k", "probe", "wheel_entries",
                 sched["wheel_entries"]])
    rows.append(["scale_1k", "probe", "overflow_entries",
                 sched["overflow_entries"]])

    premium = {
        "intra": round(means["intra_area"] / means["local"], 2),
        "inter": round(means["inter_area"] / means["local"], 2),
    }
    text = render_table(
        "P4: mesh-scale routing (areas, failover, ad growth, 1k probe)",
        columns, rows,
    ) + (
        f"\nCrossing premium vs local: {premium['intra']}x intra-area, "
        f"{premium['inter']}x inter-area"
        f"\nHub failover convergence: {failover_ns} ns "
        f"({failover_ns / period:.2f} advertise periods)"
        f"\nMean ad bytes K=6 -> K=15: {curve[6]['v3'][1]:.0f} -> "
        f"{curve[15]['v3'][1]:.0f} summarized ({growth:.2f}x over 2.5x "
        f"segments, sublinear) vs {curve[6]['flat'][1]:.0f} -> "
        f"{curve[15]['flat'][1]:.0f} flat"
        f"\n1k probe: {n_nodes} nodes, {report.events} events in "
        f"{report.sim_ns} sim-ns "
        f"({report.events_per_sec:,.0f} events/sec wall)"
    )
    publish("P4", text)
    publish_json(
        harness.bench_payload(
            exp="P4",
            title="Mesh-scale routing: crossing premium, hub failover, "
                  "sublinear ad growth, 1k-node probe",
            params={
                "n_areas": 2,
                "nodes_per_segment": NODES,
                "count_per_stream": COUNT,
                "advertise_period_tours": ADVERTISE_TOURS,
                "miss_deadline_periods": MISS_PERIODS,
                "sweep_segments": [3 * spa for spa in SWEEP_SPA],
                "measure_periods": MEASURE_PERIODS,
                "probe_topology": "area_mesh(3, 5, 68, redundant_spokes)",
                "seed": 7,
            },
            columns=columns,
            rows=rows,
            metrics={
                "crossing_premium_intra_area": premium["intra"],
                "crossing_premium_inter_area": premium["inter"],
                "failover_convergence_ns": failover_ns,
                "failover_convergence_periods": round(
                    failover_ns / period, 3),
                "confirmed_and_lost": fo_stats.offered - fo_stats.delivered,
                "ad_bytes_growth_6_to_15_segments": round(growth, 3),
                "ad_bytes_v3_k15_per_ad": round(curve[15]["v3"][1], 1),
                "ad_bytes_flat_k15_per_ad": round(curve[15]["flat"][1], 1),
                "probe_nodes": n_nodes,
                "probe_window_events": report.events,
                "probe_window_sim_ns": report.sim_ns,
                "probe_events_per_sec": round(report.events_per_sec, 1),
                "probe_wall_s": round(report.wall_s, 4),
                "sched_wheel_entries": sched["wheel_entries"],
                "sched_overflow_entries": sched["overflow_entries"],
                "sched_wheel_slots_occupied": sched["wheel_slots_occupied"],
            },
            notes="Area-tier scaling story in one emission: the premium "
                  "each hierarchy tier adds to a reliable crossing, "
                  "advertisement-driven hub failover with zero "
                  "confirmed-and-lost crossings, routing-ad bytes per "
                  "period growing sublinearly in segment count under v3 "
                  "summarization (vs the flat area-0 baseline on the "
                  "same topology), and a deterministic PerfProbe window "
                  "over the steady-state ~1k-node mesh.  Simulated ns "
                  "throughout; only events/sec and wall_s are "
                  "machine-dependent.",
        )
    )
