"""Command-line front end for the scenario engine.

::

    python -m repro.scenarios list
    python -m repro.scenarios run slide7_mixed [--seed N] [--json PATH]
    python -m repro.scenarios run all
    python -m repro.scenarios digest quiet_ring [--seed N] [--runs 2]

``run`` exits non-zero if any invariant fails; ``digest`` re-runs the
scenario and prints one trace digest per run (the golden-trace tests
document their update procedure in terms of this command).

One run at a time: for a (scenario × seed × size) grid fanned across a
worker pool with aggregated statistics, use ``python -m repro.sweep``
(see :mod:`repro.sweep`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..analysis import fmt_ns
from .library import SCENARIOS, get_scenario, scenario_names
from .runner import ScenarioResult, run_scenario


def print_result(result: ScenarioResult) -> None:
    """One human-readable block per run (shared with ``repro.sweep``)."""
    status = "OK" if result.ok else "FAIL"
    span = result.end_ns - result.ring_up_ns
    print(f"[{status}] {result.name} (seed {result.seed}): "
          f"ring up at {fmt_ns(result.ring_up_ns)}, "
          f"ran {fmt_ns(span)} ({span // max(result.tour_ns, 1)} tours)")
    c = result.counters
    print(f"       offered {c['offered']}  delivered {c['delivered']}  "
          f"ring drops {c['ring_drops']}  faults {c['faults_fired']}  "
          f"trace records {c['trace_records']}")
    for inv in result.invariants:
        mark = "+" if inv.ok else "-"
        detail = f" ({inv.detail})" if inv.detail else ""
        print(f"       [{mark}] {inv.name}{detail}")
    print(f"       trace digest {result.trace_digest}")


def _topology_summary(topo) -> str:
    """Compact shape tag: ``6n/4sw`` or ``128+128n/1r`` for routed."""
    if topo.multi_segment:
        sizes = "+".join(str(s.n_nodes) for s in topo.segments)
        return f"{sizes}n/{len(topo.routers)}r"
    return f"{topo.n_nodes}n/{topo.n_switches}sw"


def one_line_description(spec) -> str:
    """The spec's description collapsed to a single line.

    Multi-line description strings used to render their continuation
    lines under the wrong column (so several list entries *looked*
    blank); normalizing the whitespace guarantees one honest line per
    scenario, with a visible placeholder when a spec forgot to describe
    itself.
    """
    return " ".join(spec.description.split()) or "(no description)"


def cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(n) for n in scenario_names())
    for name in scenario_names():
        spec = SCENARIOS[name]()
        tags = []
        if spec.membership:
            tags.append("membership")
        if spec.faults:
            tags.append(f"{len(spec.faults)} faults")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"{name:<{width}}  {_topology_summary(spec.topology)}{suffix}")
        print(f"{'':{width}}  {one_line_description(spec)}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    names = scenario_names() if args.name == "all" else [args.name]
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario {unknown[0]!r}; known: "
              f"{', '.join(scenario_names())}", file=sys.stderr)
        return 2
    results = []
    for name in names:
        spec = get_scenario(name, seed=args.seed)
        result = run_scenario(spec)
        print_result(result)
        results.append((spec, result))
    if args.json:
        # Always a list, even for one scenario: consumers get one shape.
        payload = [
            {"spec": spec.to_dict(), "result": result.to_dict()}
            for spec, result in results
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if all(r.ok for _s, r in results) else 1


def cmd_digest(args: argparse.Namespace) -> int:
    if args.name not in SCENARIOS:
        print(f"unknown scenario {args.name!r}; known: "
              f"{', '.join(scenario_names())}", file=sys.stderr)
        return 2
    digests = []
    for _ in range(args.runs):
        spec = get_scenario(args.name, seed=args.seed)
        digests.append(run_scenario(spec).trace_digest)
    for d in digests:
        print(d)
    if len(set(digests)) != 1:
        print("DIVERGED: same-seed runs produced different digests",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.scenarios")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named scenarios")

    run_p = sub.add_parser("run", help="run a named scenario (or 'all')")
    run_p.add_argument("name", help="scenario name or 'all'")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--json", help="write spec+result JSON to this path")

    dig_p = sub.add_parser("digest", help="print trace digests of repeat runs")
    dig_p.add_argument("name")
    dig_p.add_argument("--seed", type=int, default=None)
    dig_p.add_argument("--runs", type=int, default=2)

    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    return cmd_digest(args)


if __name__ == "__main__":
    sys.exit(main())
