"""Declarative scenario engine: spec, runner, and the named library.

Quickstart::

    from repro.scenarios import get_scenario, run_scenario

    result = run_scenario(get_scenario("slide7_mixed"))
    assert result.ok, result.failures()
    print(result.trace_digest)

Or from the shell::

    python -m repro.scenarios list
    python -m repro.scenarios run slide7_mixed --seed 7 --json out.json
"""

from .library import SCENARIOS, get_scenario, scenario_names
from .runner import (
    InvariantResult,
    ScenarioResult,
    ScenarioRunner,
    run_scenario,
    trace_digest,
)
from .spec import FaultSpec, ScenarioSpec, TopologySpec, WorkloadSpec

__all__ = [
    "SCENARIOS",
    "FaultSpec",
    "InvariantResult",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "get_scenario",
    "run_scenario",
    "scenario_names",
    "trace_digest",
]
