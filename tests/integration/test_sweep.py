"""Integration tests for the parallel sweep orchestrator.

The load-bearing claims under test:

* **worker-count independence** — the same grid produces a
  byte-identical aggregate JSON whether it ran inline (``workers=1``)
  or fanned across a real multiprocessing pool (``workers=4``);
* **pool transport fidelity** — a real :class:`ScenarioResult` (from a
  run exercising faults *and* membership) survives pickling and the
  ``to_dict``/``from_dict`` round-trip without losing anything the
  aggregator or CLI reads;
* **the CLI end-to-end** — ``python -m repro.sweep run`` writes a
  schema-valid emission and exits 0 on a healthy grid.
"""

import json
import pickle

import pytest

from repro.scenarios import ScenarioSpec, TopologySpec, WorkloadSpec
from repro.scenarios.library import get_scenario
from repro.scenarios.runner import ScenarioResult, ScenarioRunner
from repro.sweep import (
    SweepGrid,
    aggregate_payload,
    grid_from_names,
    run_grid,
    write_json,
)
from repro.sweep.__main__ import main as sweep_main


def small_spec() -> ScenarioSpec:
    """A fast single-segment scenario with real traffic."""
    return ScenarioSpec(
        name="sweep_itest",
        description="tiny sweep determinism fixture",
        topology=TopologySpec(n_nodes=4, n_switches=2),
        workloads=(
            WorkloadSpec("poisson", count=20, src=0, dst=2, channel=9,
                         reliable=True,
                         params={"mean_interval_ns": 8_000}),
        ),
        horizon_tours=120,
        invariants=("no_drops", "all_delivered", "roster_converged"),
    )


def test_workers_1_and_4_emit_byte_identical_aggregates(tmp_path):
    grid = SweepGrid(specs=(small_spec(),), seeds=(3, 5, 9))
    serial = run_grid(grid, workers=1)
    pooled = run_grid(grid, workers=4)

    assert [r["index"] for r in serial] == [r["index"] for r in pooled]
    for a, b in zip(serial, pooled):
        assert a["result"]["trace_digest"] == b["result"]["trace_digest"]

    path1 = write_json(aggregate_payload(grid, serial, exp="SX"),
                       tmp_path / "w1.json")
    path4 = write_json(aggregate_payload(grid, pooled, exp="SX"),
                       tmp_path / "w4.json")
    assert path1.read_bytes() == path4.read_bytes()


def test_replicates_detect_no_divergence_on_a_real_run():
    grid = SweepGrid(specs=(small_spec(),), seeds=(3,), replicates=2)
    records = run_grid(grid, workers=2)
    # Both replicates ran; the aggregator accepts them as one cell.
    payload = aggregate_payload(grid, records, exp="SX")
    assert payload["metrics"]["runs"] == 1
    digests = payload["scenarios"][0]["digests"]
    assert list(digests) == ["3"]


@pytest.fixture(scope="module")
def churn_result() -> ScenarioResult:
    """One real run covering faults, membership and convergence data."""
    spec = get_scenario("churn_under_load")
    return ScenarioRunner(spec, seed=spec.seed).run()


def test_scenario_result_pickle_round_trip(churn_result):
    clone = pickle.loads(pickle.dumps(churn_result))
    assert clone.to_dict() == churn_result.to_dict()
    assert clone.ok == churn_result.ok
    assert clone.trace_digest == churn_result.trace_digest


def test_scenario_result_dict_round_trip(churn_result):
    payload = json.loads(json.dumps(churn_result.to_dict()))
    clone = ScenarioResult.from_dict(payload)
    assert clone.ok == churn_result.ok
    assert clone.trace_digest == churn_result.trace_digest
    assert clone.counters == churn_result.counters
    assert [i.name for i in clone.invariants] == \
        [i.name for i in churn_result.invariants]
    # ok is recomputed from the invariants, never trusted from the wire.
    assert clone.ok == all(i.ok for i in clone.invariants)


def test_cli_run_emits_schema_valid_aggregate(tmp_path, capsys):
    rc = sweep_main([
        "run", "quiet_ring", "--seeds", "1,2", "--workers", "2",
        "--exp", "SX", "--out", str(tmp_path),
    ])
    assert rc == 0
    emitted = json.loads((tmp_path / "SX.json").read_text())
    assert emitted["schema"] == "repro-bench/1"
    assert emitted["params"]["seeds"] == [1, 2]
    assert "workers" not in json.dumps(emitted)
    out = capsys.readouterr().out
    assert "run 1/2" in out and "wrote" in out


def test_cli_rejects_unknown_scenario(tmp_path, capsys):
    rc = sweep_main([
        "run", "no_such_scenario", "--seeds", "1",
        "--exp", "SX", "--out", str(tmp_path),
    ])
    assert rc == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_cli_grid_prints_expansion_without_running(capsys):
    rc = sweep_main(["grid", "quiet_ring", "--seeds", "1,2",
                     "--sizes", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "quiet_ring_n8" in out
    assert "2 runs" in out


def test_committed_s1_sweep_covers_ten_seeds():
    """The committed reference sweep must keep its widened seed axis:
    seed-sensitivity claims read from S1 need the statistical width,
    and the CI sweep-smoke job regenerates exactly this grid."""
    import pathlib

    path = (pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "results" / "S1.json")
    payload = json.loads(path.read_text(encoding="utf-8"))
    seeds = payload["params"]["seeds"]
    assert len(seeds) >= 10
    assert len(set(seeds)) == len(seeds)
    assert {7, 11, 23} <= set(seeds)  # the original three are retained
    assert payload["params"]["scenarios"] == [
        "diurnal_ramp", "failover_under_load",
    ]
    # The bootstrap CI95 columns are part of the committed emission.
    assert payload["columns"] == [
        "scenario", "metric", "seeds", "mean",
        "mean_ci95_lo", "mean_ci95_hi", "p95", "min", "max",
    ]
    for row in payload["rows"]:
        _, _, _, mean, ci_lo, ci_hi, _, lowest, highest = row
        assert lowest <= ci_lo <= mean <= ci_hi <= highest
    # The seed axis actually moves failover latency, so its interval
    # must be a real one, not a collapsed point.
    wide = [r for r in payload["rows"]
            if r[:2] == ["failover_under_load", "latency_mean_ns"]]
    assert wide and wide[0][4] < wide[0][5]


def test_grid_from_names_runs_sized_scenarios():
    grid = grid_from_names(["quiet_ring"], seeds=[4], sizes=[8])
    records = run_grid(grid, workers=1)
    assert len(records) == 1
    assert records[0]["name"] == "quiet_ring_n8"
    assert records[0]["result"]["ok"] is True
