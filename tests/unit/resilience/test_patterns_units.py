"""Unit checks of the resilience primitives' pure logic.

Circuit-breaker state machine, token-bucket arithmetic, bulkhead
compartment algebra and dead-letter accounting — no simulator, no
router.  The wiring into the egress/ingress paths is covered by
``tests/unit/routing/test_router_units.py`` and the integration suite.
"""

import pytest

from repro.resilience import (
    BreakerState,
    CircuitBreaker,
    CompartmentedQueue,
    DeadLetterChannel,
    ResilienceConfig,
    TokenBucket,
)
from repro.sim.monitor import Counter


# --------------------------------------------------------------- config
def test_resilience_config_defaults_everything_off():
    cfg = ResilienceConfig()
    assert not cfg.circuit_breaker
    assert not cfg.dead_letter
    assert not cfg.throttle
    assert not cfg.bulkhead
    assert not cfg.any_enabled


def test_resilience_config_any_enabled():
    assert ResilienceConfig(circuit_breaker=True).any_enabled
    assert ResilienceConfig(bulkhead=True).any_enabled


def test_resilience_config_validation():
    with pytest.raises(ValueError, match="breaker threshold"):
        ResilienceConfig(breaker_threshold=0)
    with pytest.raises(ValueError, match="dead-letter capacity"):
        ResilienceConfig(dead_letter_capacity=0)
    with pytest.raises(ValueError, match="token"):
        ResilienceConfig(throttle_token_ns=0)
    with pytest.raises(ValueError, match="burst"):
        ResilienceConfig(throttle_burst=0)
    with pytest.raises(ValueError, match="backlog"):
        ResilienceConfig(throttle_backlog=0)


# -------------------------------------------------------------- breaker
DST = (1, 5)


def test_breaker_opens_at_threshold():
    events = []
    b = CircuitBreaker(3, notify=lambda ev, dst: events.append(ev))
    assert b.record_park(DST, now=0, retry_ns=100) is False
    assert b.record_park(DST, now=0, retry_ns=100) is False
    assert b.state_of(DST) is BreakerState.CLOSED
    # Third consecutive park trips it.
    assert b.record_park(DST, now=0, retry_ns=100) is True
    assert b.state_of(DST) is BreakerState.OPEN
    assert b.is_open(DST)
    assert events == ["opened"]


def test_breaker_delivery_resets_the_failure_count():
    b = CircuitBreaker(3)
    b.record_park(DST, now=0, retry_ns=100)
    b.record_park(DST, now=0, retry_ns=100)
    b.record_delivery(DST)
    # The streak restarts: two more parks stay CLOSED.
    assert b.record_park(DST, now=0, retry_ns=100) is False
    assert b.record_park(DST, now=0, retry_ns=100) is False
    assert b.state_of(DST) is BreakerState.CLOSED


def test_breaker_fails_fast_until_probe_window():
    b = CircuitBreaker(1)
    b.record_park(DST, now=0, retry_ns=100)
    assert not b.admit(DST, now=50)  # before the probe window
    assert b.probes_due(99) == []
    assert b.probes_due(100) == [DST]


def test_breaker_half_open_probe_success_closes():
    events = []
    b = CircuitBreaker(1, notify=lambda ev, dst: events.append(ev))
    b.record_park(DST, now=0, retry_ns=100)
    assert b.admit(DST, now=100)  # the probe is admitted
    assert b.state_of(DST) is BreakerState.HALF_OPEN
    assert b.record_delivery(DST) is True  # closed: caller redrives
    assert b.state_of(DST) is BreakerState.CLOSED
    assert not b.is_open(DST)
    assert events == ["opened", "probe", "closed"]


def test_breaker_half_open_probe_failure_reopens():
    events = []
    b = CircuitBreaker(1, notify=lambda ev, dst: events.append(ev))
    b.record_park(DST, now=0, retry_ns=100)
    assert b.admit(DST, now=100)
    # The probe parks again: back to OPEN with a fresh probe window.
    assert b.record_park(DST, now=100, retry_ns=100) is True
    assert b.state_of(DST) is BreakerState.OPEN
    assert not b.admit(DST, now=150)
    assert b.admit(DST, now=200)
    assert events == ["opened", "probe", "reopened", "probe"]


def test_breaker_destinations_are_independent():
    other = (2, 9)
    b = CircuitBreaker(1)
    b.record_park(DST, now=0, retry_ns=100)
    assert b.is_open(DST)
    assert not b.is_open(other)
    assert b.admit(other, now=0)
    assert b.open_count == 1


def test_breaker_reset_forgets_everything():
    b = CircuitBreaker(1)
    b.record_park(DST, now=0, retry_ns=100)
    b.reset()
    assert b.open_count == 0
    assert b.admit(DST, now=0)
    assert b.state_of(DST) is BreakerState.CLOSED


# --------------------------------------------------------- token bucket
def test_bucket_starts_full_and_drains():
    bucket = TokenBucket(token_ns=100, burst=2, now=0)
    assert bucket.try_take(0)
    assert bucket.try_take(0)
    assert not bucket.try_take(0)  # burst exhausted


def test_bucket_refills_with_time():
    bucket = TokenBucket(token_ns=100, burst=2, now=0)
    bucket.try_take(0)
    bucket.try_take(0)
    assert not bucket.try_take(99)
    assert bucket.try_take(100)  # one token matured


def test_bucket_caps_at_burst():
    bucket = TokenBucket(token_ns=100, burst=2, now=0)
    bucket.try_take(0)
    bucket.try_take(0)
    # A long idle period matures at most ``burst`` tokens.
    assert bucket.try_take(10_000)
    assert bucket.try_take(10_000)
    assert not bucket.try_take(10_000)


def test_bucket_delay_until_ready():
    bucket = TokenBucket(token_ns=100, burst=1, now=0)
    assert bucket.delay_until_ready(0) == 0
    bucket.try_take(0)
    assert bucket.delay_until_ready(0) == 100
    assert bucket.delay_until_ready(60) == 40


def test_bucket_reset_refills():
    bucket = TokenBucket(token_ns=100, burst=1, now=0)
    bucket.try_take(0)
    bucket.reset(5)
    assert bucket.try_take(5)


# ------------------------------------------------------------- bulkhead
class _Item:
    def __init__(self, ingress, tag):
        self.ingress = ingress
        self.tag = tag


def test_compartments_isolate_capacity():
    q = CompartmentedQueue(2)
    assert q.accepts(0)
    q.append(_Item(0, "a"))
    q.append(_Item(0, "b"))
    assert not q.accepts(0)  # segment 0's share is spent...
    assert q.accepts(1)      # ...segment 1's is untouched
    q.append(_Item(1, "c"))
    assert len(q) == 3


def test_round_robin_drain_interleaves_compartments():
    q = CompartmentedQueue(4)
    for tag in ("a1", "a2", "a3"):
        q.append(_Item(0, tag))
    q.append(_Item(1, "b1"))
    drained = [q.popleft().tag for _ in range(4)]
    # The lone item from ingress 1 does not wait out ingress 0's burst.
    assert drained == ["a1", "b1", "a2", "a3"]
    with pytest.raises(IndexError):
        q.popleft()


def test_fifo_order_within_a_compartment():
    q = CompartmentedQueue(8)
    q.extend(_Item(0, t) for t in ("x", "y", "z"))
    assert [q.popleft().tag for _ in range(3)] == ["x", "y", "z"]


def test_unknown_ingress_falls_into_default_compartment():
    q = CompartmentedQueue(1)
    q.append(object())  # no .ingress attribute
    assert not q.accepts(-1)
    assert len(q) == 1


def test_clear_and_depth_queries():
    q = CompartmentedQueue(4)
    q.append(_Item(0, "a"))
    q.append(_Item(2, "b"))
    assert q.depth_of(0) == 1
    assert q.depth_of(2) == 1
    assert q.compartments() == [0, 2]
    q.clear()
    assert len(q) == 0
    assert not q


# ---------------------------------------------------------- dead letter
def test_dead_letter_counts_by_reason():
    counters = Counter()
    dlq = DeadLetterChannel(4, counters)
    dlq.consume("x", "circuit_open", segment=0, redrivable=True, now=10)
    dlq.consume(None, "shadow_expired", segment=1, now=20)
    assert counters["dead_lettered"] == 2
    assert counters["dead_letter_circuit_open"] == 1
    assert counters["dead_letter_shadow_expired"] == 1
    assert len(dlq) == 2


def test_dead_letter_rejects_unknown_reason():
    dlq = DeadLetterChannel(4, Counter())
    with pytest.raises(ValueError, match="reason"):
        dlq.consume("x", "gremlins", segment=0)


def test_dead_letter_overflow_evicts_oldest():
    counters = Counter()
    dlq = DeadLetterChannel(2, counters)
    dlq.consume("a", "circuit_open", segment=0, redrivable=True, now=1)
    dlq.consume("b", "circuit_open", segment=0, redrivable=True, now=2)
    evicted = dlq.consume("c", "circuit_open", segment=0, redrivable=True,
                          now=3)
    assert evicted is not None and evicted.item == "a"
    assert counters["dead_letter_overflow"] == 1
    assert len(dlq) == 2


def test_redrive_filters_and_is_oldest_first():
    class _Crossing:
        def __init__(self, dst):
            self.dst = dst

    counters = Counter()
    dlq = DeadLetterChannel(8, counters)
    near, far = _Crossing((1, 5)), _Crossing((2, 7))
    dlq.consume(near, "circuit_open", segment=0, redrivable=True, now=1)
    dlq.consume(far, "circuit_open", segment=1, redrivable=True, now=2)
    dlq.consume(None, "shadow_expired", segment=0, now=3)  # not redrivable
    # Segment filter: only port 0's entry comes back.
    entries = dlq.redrive(segment=0)
    assert [e.item for e in entries] == [near]
    assert counters["dead_letter_redriven"] == 1
    # dst filter on what remains.
    assert dlq.redrive(dst=(9, 9)) == []
    assert [e.item for e in dlq.redrive(dst=(2, 7))] == [far]
    # The accounting-only record is never redriven, but clear counts it.
    assert len(dlq) == 1
    assert dlq.clear() == 1
    assert not dlq


def test_redrive_limit():
    counters = Counter()
    dlq = DeadLetterChannel(8, counters)
    for i in range(3):
        dlq.consume(i, "circuit_open", segment=0, redrivable=True, now=i)
    assert [e.item for e in dlq.redrive(limit=2)] == [0, 1]
    assert [e.item for e in dlq.redrive()] == [2]
