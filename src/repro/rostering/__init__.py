"""Rostering: failure detection, flooding exploration, roster computation.

The self-healing heart of AmpNet (slides 13-16).
"""

from .agent import AgentState, RosterAgent, RosterConfig
from .roster import Roster, RosterError, compute_roster
from .wire import (
    CommitAssembler,
    PAD,
    Phase,
    RosterMessage,
    decode,
    encode_commit_chunks,
    encode_explore,
    encode_join,
    encode_report,
    flood_key,
)

__all__ = [
    "AgentState",
    "CommitAssembler",
    "PAD",
    "Phase",
    "Roster",
    "RosterAgent",
    "RosterConfig",
    "RosterError",
    "RosterMessage",
    "compute_roster",
    "decode",
    "encode_commit_chunks",
    "encode_explore",
    "encode_join",
    "encode_report",
    "flood_key",
]
