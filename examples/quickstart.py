#!/usr/bin/env python3
"""Quickstart: bring up an AmpNet segment, move data, survive a failure.

Builds the slide-14 quad-redundant network (six nodes, four switches),
lets it self-organize into a logical ring, pushes some traffic, then cuts
a fibre and watches rostering heal the ring in about two ring-tour times
— with every in-flight message still delivered.

Run:  python examples/quickstart.py
"""

from repro import AmpNetCluster
from repro.analysis import availability_timeline, fmt_ns, render_timeline
from repro.transport import Channel


def main() -> None:
    # 1. Build and boot the slide-14 topology.
    cluster = AmpNetCluster(n_nodes=6, n_switches=4, fiber_m=50.0, seed=7)
    cluster.start()
    t_up = cluster.run_until_ring_up()
    roster = cluster.current_roster()
    print(f"ring up at t={fmt_ns(t_up)}: members={list(roster.members)} "
          f"via switches {sorted(set(roster.hop_switches))}")

    # 2. Reliable messaging between hosts.
    received = []
    cluster.nodes[5].messenger.on_message(
        Channel.GENERAL + 10,  # a free channel
        lambda src, data, ch: received.append((src, data)),
    )
    handle = cluster.nodes[0].messenger.send(
        5, b"hello from node 0 over the insertion ring", Channel.GENERAL + 10
    )
    cluster.run(until=handle.delivered)
    print(f"message confirmed after {fmt_ns(cluster.sim.now - t_up)}; "
          f"node 5 got {received[0][1]!r}")

    # 3. The network cache: write once, read anywhere.
    cluster.nodes[2].files.write_file("motd", b"AmpNet never loses your data")
    cluster.run(until=cluster.sim.now + 50 * cluster.tour_estimate_ns)
    print(f"node 4 reads the replicated file: "
          f"{cluster.nodes[4].files.read_file_now('motd')!r}")

    # 4. Cut the fibre carrying node 0's active hop.  Hardware detects
    #    the carrier loss, rostering floods, the largest possible ring
    #    is rebuilt and certified.
    victim_switch = roster.hop_switch_from(0)
    t_cut = cluster.sim.now
    cluster.cut_link(0, victim_switch)
    cluster.run_until_reroster()
    healed = cluster.current_roster()
    print(f"fibre to switch {victim_switch} cut at t={fmt_ns(t_cut)}; "
          f"ring healed in {fmt_ns(cluster.sim.now - t_cut)} "
          f"(~{(cluster.sim.now - t_cut) / cluster.tour_estimate_ns:.1f} ring tours)")
    print(f"new roster round {healed.round_no}, all six nodes still in: "
          f"{sorted(healed.members) == list(range(6))}")

    # 5. Traffic still flows; nothing was lost.
    handle = cluster.nodes[0].messenger.send(
        5, b"still here after the cut", Channel.GENERAL + 10
    )
    cluster.run(until=handle.delivered)
    print(f"post-failure message delivered; total messages at node 5: "
          f"{len(received)}")

    # 6. The whole story, as an operator would read it.
    print()
    print(render_timeline(availability_timeline(cluster, since=t_cut - 1),
                          title="What just happened"))


if __name__ == "__main__":
    main()
