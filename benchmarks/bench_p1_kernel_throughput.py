"""P1: kernel throughput of the frame hot path (the kernel-speed gauge).

Measures the discrete-event kernel over the steady-state window of an
all-to-all broadcast storm (the workload where every layer of the
kernel -> phys -> MAC -> transport stack is hot), using the scenario
runner's phase hooks so ring bring-up is excluded.  Two families of
numbers come out:

* **deterministic** — schedule entries processed for the fixed seeded
  workload.  These are identical on every machine and every run, so the
  bench *asserts* on them: the optimised hot path must keep doing the
  same simulated work with no drops, and with fewer schedule entries
  than the previous implementation needed (recorded below).
* **measured** — events/sec and simulated-ns per wall-second on this
  machine, recorded (never asserted: CI hardware varies).

The grid runs through :mod:`repro.sweep` (``grid_from_names`` over the
``kernel_storm`` library scenario x the size axis, executed by
``run_grid`` with a probe-attaching cell function), so P1 shares the
expansion, pool transport and grid-order sorting every sweep uses; the
emission is identical at any ``REPRO_SWEEP_WORKERS`` except for the
wall-derived columns.  Storm cells run best-of-``STORM_BEST_OF`` for
wall fidelity (the deterministic columns are identical across repeats).

Two baselines are pinned, both storm-window, best-of-N on the machine
that produced the committed ``results/P1.json``:

* ``PRE_REFACTOR_BASELINE`` — commit ``70649d8``, before the PR-3
  hot-path refactor (historical context);
* ``WAVE1_BASELINE`` — commit ``c6a1465``, the heap kernel + chained
  link scheduling the wave-2 work (timer wheel, one-entry-per-frame
  links, batched MAC ticks) replaced.  ``speedup_same_workload`` and
  ``equivalent_events_per_sec`` are computed against this one.

The two implementations do different amounts of *scheduling* for the
same simulated work — wave 2 posts ~0.6x the schedule entries per
frame — so raw events/sec understates the speedup; the like-for-like
number is the same-workload wall ratio (``speedup_same_workload``).

Sizes can be overridden for smoke runs: ``P1_SIZES=16 pytest ...``
(which also skips the large committed rows below).  Beyond the size
grid, two library scale points are emitted as committed rows:
``large_ring_256`` (255 nodes, the 8-bit address ceiling) and the
routed ``four_ring_512`` star (4x128 nodes on one router).
"""

import os

from repro.analysis import render_table
from repro.perf import PerfProbe
from repro.scenarios.runner import ScenarioRunner
from repro.sweep import grid_from_names, run_grid, workers_from_env

import harness

DEFAULT_SIZES = (16, 64)
CELLS_PER_NODE = 8
#: wall best-of for the storm cells (deterministic columns are repeat-
#: invariant; only the wall-derived numbers differ between repeats).
STORM_BEST_OF = 7
#: library scale points emitted as committed rows (single run each —
#: minutes-scale cells, and no baseline ratio is computed for them).
LARGE_SCENARIOS = ("large_ring_256", "four_ring_512")
LARGE_SEED = 7

#: Storm-window numbers at the pre-refactor commit (70649d8), measured
#: on the machine that produced the committed results/P1.json.
PRE_REFACTOR_BASELINE = {
    16: {"events": 35_824, "wall_s": 0.128, "events_per_sec": 280_694},
    64: {"events": 1_098_696, "wall_s": 3.992, "events_per_sec": 275_209},
}

#: Storm-window numbers at the wave-1 commit (c6a1465: heap kernel,
#: chained link callbacks, per-MAC pacing timers), best of five on the
#: machine that produced the committed results/P1.json — the baseline
#: the wave-2 speedup metrics are computed against.
WAVE1_BASELINE = {
    16: {"events": 29_728, "wall_s": 0.038, "events_per_sec": 792_419},
    64: {"events": 914_563, "wall_s": 1.209, "events_per_sec": 756_482},
}


def sizes_under_test():
    return harness.sizes_from_env("P1_SIZES", DEFAULT_SIZES)


def smoke_override_active() -> bool:
    """True when P1_SIZES trims the grid (CI smoke): skip the large rows."""
    return bool((os.environ.get("P1_SIZES") or "").strip())


def storm_grid():
    return grid_from_names(["kernel_storm"], seeds=[0],
                           sizes=sizes_under_test())


def large_grid():
    return grid_from_names(list(LARGE_SCENARIOS), seeds=[LARGE_SEED])


def _probed_cell(cell, runs):
    """Run one grid cell ``runs`` times, keeping the best-wall window.

    The PerfProbe windows the workload phase only (armed -> settled):
    ring bring-up is construction cost, not kernel throughput.  The
    scenario payload rides along unchanged; the window report (with the
    scheduler-occupancy snapshot) lands under ``payload["perf"]``.
    """
    payload = best = None
    for _ in range(runs):
        state = {}

        def hook(phase: str) -> None:
            if phase == "built":
                probe = state["probe"] = PerfProbe(runner.cluster.sim)
                probe.start()
            elif phase == "armed":
                state["probe"].start()  # reset: measure armed -> settled
            elif phase == "settled":
                state["report"] = state["probe"].stop()

        runner = ScenarioRunner(cell.spec, seed=cell.seed, phase_hook=hook)
        result = runner.run()
        report = state["report"]
        if best is None or report.wall_s < best.wall_s:
            best = report
            payload = result.to_dict()
    payload["perf"] = best.to_dict()
    return payload


def storm_cell(cell):
    return _probed_cell(cell, STORM_BEST_OF)


def large_cell(cell):
    return _probed_cell(cell, 1)


def run_experiment():
    # Serial by default: the wall numbers in the committed emission come
    # from an uncontended machine; REPRO_SWEEP_WORKERS=N trades
    # wall-metric fidelity for turnaround (the deterministic columns are
    # unaffected — run_grid re-sorts into grid order at any fan-out).
    workers = workers_from_env()
    storm_records = run_grid(storm_grid(), workers=workers,
                             cell_fn=storm_cell)
    large_records = []
    if not smoke_override_active():
        large_records = run_grid(large_grid(), workers=workers,
                                 cell_fn=large_cell)
    return storm_records, large_records


def _storm_size(record):
    # kernel_storm_n{size}: the suffix with_size() stamps on the name.
    return int(record["name"].rsplit("_n", 1)[1])


def test_p1_kernel_throughput(benchmark, publish, publish_json):
    storm_records, large_records = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    for record in storm_records + large_records:
        assert "error" not in record, record.get("error")
        assert record["result"]["ok"], f"invariants failed: {record['name']}"

    for record in storm_records:
        n = _storm_size(record)
        result = record["result"]
        assert result["counters"]["ring_drops"] == 0
        expected = CELLS_PER_NODE * n * (n - 1)
        assert result["counters"]["delivered"] == expected
        base = WAVE1_BASELINE.get(n)
        if base is not None:
            # Deterministic: same seeded workload, strictly less
            # scheduling work than the wave-1 hot path needed.
            events = result["perf"]["events"]
            assert events < base["events"], (
                f"n={n}: {events} schedule entries, wave 1 "
                f"needed {base['events']}"
            )

    columns = [
        "Scenario",
        "Nodes",
        "Events (window)",
        "Wall s",
        "Events/wall-s",
        "Sim-ns per wall-s",
        "Overflow spills",
        "Wave-1 events",
        "Wave-1 ev/s",
    ]
    table_rows = []
    metrics = {}
    for record in storm_records:
        n = _storm_size(record)
        perf = record["result"]["perf"]
        base = WAVE1_BASELINE.get(n)
        table_rows.append((
            record["name"],
            n,
            perf["events"],
            round(perf["wall_s"], 3),
            round(perf["events_per_sec"]),
            round(perf["sim_ns_per_wall_s"]),
            perf["scheduler"]["overflow_spills"],
            base["events"] if base else None,
            base["events_per_sec"] if base else None,
        ))
        if base:
            # Like-for-like: the wall ratio for the identical workload
            # (equivalently, wave-1-basis events over wave-2 wall).
            metrics[f"n{n}_speedup_same_workload"] = round(
                base["wall_s"] / perf["wall_s"], 2
            )
            metrics[f"n{n}_speedup_events_per_sec"] = round(
                perf["events_per_sec"] / base["events_per_sec"], 2
            )
            metrics[f"n{n}_equivalent_events_per_sec"] = round(
                base["events"] / perf["wall_s"]
            )
            metrics[f"n{n}_schedule_entries_ratio"] = round(
                perf["events"] / base["events"], 3
            )
    for record in large_records:
        perf = record["result"]["perf"]
        table_rows.append((
            record["name"],
            {"large_ring_256": 255, "four_ring_512": 512}[record["name"]],
            perf["events"],
            round(perf["wall_s"], 3),
            round(perf["events_per_sec"]),
            round(perf["sim_ns_per_wall_s"]),
            perf["scheduler"]["overflow_spills"],
            None,
            None,
        ))
        metrics[f"{record['name']}_events_per_sec"] = round(
            perf["events_per_sec"]
        )

    publish(
        "P1",
        render_table(
            "P1: kernel throughput, steady-state workload window", columns,
            table_rows,
        )
        + "\nShape: the timer-wheel kernel + one-entry-per-frame links do"
        "\nthe same simulated work with ~0.6x the schedule entries and a"
        "\nmultiple of the wall speed; wave-1 columns are the pre-wheel"
        "\ncommit on the same machine.  Large rows are the n=255 address-"
        "\nceiling ring and the routed 4x128 star.",
    )
    publish_json(
        harness.bench_payload(
            exp="P1",
            title="Kernel throughput: storm window, timer wheel vs wave 1",
            params={
                "cells_per_node": CELLS_PER_NODE,
                "sizes": list(sizes_under_test()),
                "storm_best_of": STORM_BEST_OF,
                "large_scenarios": (
                    [] if smoke_override_active() else list(LARGE_SCENARIOS)
                ),
                "baseline_commit": "c6a1465",
                "baseline": {str(k): v for k, v in WAVE1_BASELINE.items()},
                "pre_refactor_commit": "70649d8",
                "pre_refactor": {
                    str(k): v for k, v in PRE_REFACTOR_BASELINE.items()
                },
            },
            columns=columns,
            rows=table_rows,
            metrics=metrics,
            notes="Wall-derived metrics are machine-dependent and only "
                  "asserted on manually; the events column is exact and "
                  "asserted in CI.  speedup_same_workload is the "
                  "like-for-like number (wave 2 also removed ~40% of "
                  "schedule entries per frame, so raw events/sec "
                  "understates it).",
        )
    )
