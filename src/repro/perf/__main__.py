"""Profile runner: kernel throughput of any named scenario.

::

    python -m repro.perf large_ring_128
    python -m repro.perf slide7_mixed --per-kind
    python -m repro.perf large_ring_64 --seed 9 --json out.json

Runs the scenario through the ordinary :class:`ScenarioRunner` with a
:class:`~repro.perf.PerfProbe` attached, and reports two windows:

* **total** — cluster construction through judgement (what a user
  waits for);
* **workload** — the window between the ``armed`` and ``settled``
  phases, i.e. the steady-state frame hot path with ring bring-up
  excluded (what the P1 bench tracks across commits).

Exits non-zero if the scenario's invariants fail — a profile of a
broken run is not a data point.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..scenarios import SCENARIOS, get_scenario, scenario_names
from ..scenarios.runner import ScenarioRunner
from . import PerfProbe, PerfReport


def profile_scenario(name: str, seed: Optional[int] = None,
                     per_kind: bool = False):
    """Run ``name`` under the probe; returns (result, total, workload)."""
    spec = get_scenario(name, seed=seed)
    state = {}

    def hook(phase: str) -> None:
        # The cluster (and its simulator) exist from the "built" phase on.
        if phase == "built":
            probe = state["probe"] = PerfProbe(
                runner.cluster.sim, per_kind=per_kind
            )
            probe.start()
        elif phase == "armed":
            state["ring_up"] = state["probe"].snapshot()
            state["probe"].start()
        elif phase == "settled":
            state["workload"] = state["probe"].snapshot()

    runner = ScenarioRunner(spec, phase_hook=hook)
    result = runner.run()
    tail = state["probe"].stop()  # armed -> end of run
    ring_up = state["ring_up"]
    workload = state.get("workload", tail)
    merged = {
        layer: ring_up.by_layer.get(layer, 0) + tail.by_layer.get(layer, 0)
        for layer in set(ring_up.by_layer) | set(tail.by_layer)
    }
    total = PerfReport(
        events=ring_up.events + tail.events,
        sim_ns=ring_up.sim_ns + tail.sim_ns,
        wall_s=ring_up.wall_s + tail.wall_s,
        by_layer=merged,
    )
    return result, total, workload


def _print_report(label: str, report: PerfReport) -> None:
    print(f"  {label}:")
    print(f"    events          {report.events:,}")
    print(f"    sim time        {report.sim_ns / 1e6:.3f} ms")
    print(f"    wall time       {report.wall_s:.3f} s")
    print(f"    events/sec      {report.events_per_sec:,.0f}")
    print(f"    sim-ns / wall-s {report.sim_ns_per_wall_s:,.0f}")
    print(f"    wall-s / sim-s  {report.wall_s_per_sim_s:,.2f}")
    for layer, count in sorted(report.by_layer.items(), key=lambda kv: -kv[1]):
        print(f"      {layer:<24} {count:,}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.perf")
    parser.add_argument("scenario", help="named scenario (see: list)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--per-kind", action="store_true",
                        help="break events down by stack layer")
    parser.add_argument("--json", help="write the report as JSON")
    args = parser.parse_args(argv)

    if args.scenario == "list":
        for name in scenario_names():
            print(name)
        return 0
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; known: "
              f"{', '.join(scenario_names())}", file=sys.stderr)
        return 2

    result, total, workload = profile_scenario(
        args.scenario, seed=args.seed, per_kind=args.per_kind
    )
    status = "OK" if result.ok else "FAIL"
    print(f"[{status}] {result.name} (seed {result.seed})")
    _print_report("total (build + ring-up + workload)", total)
    _print_report("workload window (armed -> settled)", workload)

    if args.json:
        payload = {
            "scenario": result.name,
            "seed": result.seed,
            "ok": result.ok,
            "total": total.to_dict(),
            "workload": workload.to_dict(),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
