"""Deterministic discrete-event simulation kernel.

This is the substrate on which the whole AmpNet model runs.  Design goals,
in order:

1. **Determinism** — integer nanosecond clock, strict FIFO tie-breaking for
   events scheduled at the same instant, and seeded random streams (see
   :mod:`repro.sim.rand`).  Two runs with the same seed produce identical
   traces, which the failover experiments rely on.
2. **Speed** — a single binary heap of ``(time, seq)`` keys; callbacks are
   plain Python callables; events use ``__slots__``.  A full F3 all-to-all
   broadcast storm (16 nodes) pushes a few hundred thousand events and
   completes in seconds on a laptop, matching the repro band.
3. **Ergonomics** — simpy-style generator processes so protocol state
   machines (rostering, DMA engines, TCP baseline) read like sequential
   code.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .events import AllOf, AnyOf, Callback, Event, Process, SimulationError, Timeout
from .rand import SeededStreams

__all__ = ["Simulator", "StopSimulation"]

#: Schedule seq reserved for run()'s horizon sentinel: sorts after every
#: real entry at the same instant (real seqs grow from zero and cannot
#: plausibly reach 2**63 in one process).
_HORIZON_SEQ = 2 ** 63


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` at an event."""


class Simulator:
    """Event loop with an integer-nanosecond clock.

    Parameters
    ----------
    seed:
        Master seed for the simulation's named random streams.  Every
        stochastic component (workload generators, fault injectors, jitter
        models) draws from ``sim.rng.stream(name)`` so components never
        perturb each other's randomness.
    strict:
        When True (default), an event that *fails* with no process waiting
        on it aborts the simulation by re-raising the exception.  This
        catches silently-dying firmware processes in tests.
    """

    def __init__(self, seed: int = 0, strict: bool = True):
        self._now: int = 0
        self._queue: List[Tuple[int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self.strict = strict
        self.rng = SeededStreams(seed)
        #: total schedule entries processed; the kernel's throughput unit
        #: (see :mod:`repro.perf`).  Always maintained — an int bump per
        #: event is noise next to the heap operation.
        self.events_processed: int = 0
        #: optional observer called with each processed entry.  Purely
        #: read-only accounting (per-kind/per-layer event counts); it MUST
        #: NOT mutate simulation state, so enabling it cannot change the
        #: event sequence — a property the determinism tests pin.
        self.on_event: Optional[Callable[[Any], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # ------------------------------------------------------------- factories
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ns from now."""
        return Timeout(self, int(delay), value)

    def process(
        self,
        gen: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_at(self, time: int, fn: Callable[..., None], *args: Any) -> Callback:
        """Run ``fn(*args)`` at absolute simulated ``time`` (>= now).

        This is the allocation-light scheduling path: one slim
        :class:`~repro.sim.events.Callback` goes straight onto the heap —
        no intermediate Timeout, wrapper lambda or callback list.  The
        returned handle cannot be yielded on; processes that need to wait
        should use :meth:`timeout`.
        """
        if time < self._now:
            raise SimulationError(f"call_at({time}) is in the past (now={self._now})")
        cb = Callback(fn, args)
        heapq.heappush(self._queue, (time, self._seq, cb))
        self._seq += 1
        return cb

    def call_in(self, delay: int, fn: Callable[..., None], *args: Any) -> Callback:
        """Run ``fn(*args)`` after ``delay`` ns (see :meth:`call_at`)."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        cb = Callback(fn, args)
        heapq.heappush(self._queue, (self._now + delay, self._seq, cb))
        self._seq += 1
        return cb

    # ------------------------------------------------------------- scheduling
    # CONTRACT: the schedule heap holds ``(fire_time, seq, entry)`` with a
    # monotonically increasing per-push seq.  This exact shape is
    # hand-inlined (for speed) at the hot-path producers in phys/link.py,
    # phys/switch.py and ring/mac.py — change it HERE and THERE together,
    # or event ordering silently corrupts.
    def _enqueue(self, event: Event, delay: int = 0) -> None:
        """Put a triggered event on the schedule queue (kernel internal)."""
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> Optional[int]:
        """Timestamp of the next scheduled event, or None if queue empty."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on empty schedule")
        when, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - heap invariant
            raise SimulationError("time ran backwards")
        self._now = when
        self.events_processed += 1
        if self.on_event is not None:
            self.on_event(event)
        had_waiters = bool(event.callbacks)
        event._process()
        if self.strict and not event._ok and not had_waiters:
            # A failure nobody observed: surface it instead of losing it.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the schedule drains,
        * an ``int`` — run until simulated time reaches that instant,
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its failure).
        """
        if until is None:
            stop_time: Optional[int] = None
        elif isinstance(until, Event):
            if until.processed:
                if until._ok:
                    return until._value
                raise until._value  # type: ignore[misc]
            assert until.callbacks is not None
            until.callbacks.append(self._stop_on)
            stop_time = None
        else:
            stop_time = int(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"run(until={stop_time}) is in the past (now={self._now})"
                )

        # Hot loop: step() inlined with locals bound once.  At production
        # scale (128/256-node rings) the per-event attribute lookups and
        # the extra frame of a method call are a measurable fraction of
        # the whole run, so the loop trades a little duplication for it.
        # A time horizon rides the heap as a sentinel entry (sorting after
        # every real event at that instant) instead of costing a
        # peek-and-compare on each iteration.
        queue = self._queue
        heappop = heapq.heappop
        strict = self.strict
        observer = self.on_event
        processed = 0
        callback_type = Callback
        sentinel: Optional[Callback] = None
        if stop_time is not None:
            sentinel = Callback(self._noop, ())
            heapq.heappush(queue, (stop_time, _HORIZON_SEQ, sentinel))
        try:
            while queue:
                when, _seq, event = heappop(queue)
                if event is sentinel:
                    self._now = stop_time
                    sentinel = None
                    return None
                self._now = when
                processed += 1
                if observer is not None:
                    observer(event)
                if type(event) is callback_type:
                    # Slim schedule entry: no waiters, cannot fail softly
                    # (an exception in fn propagates like any unhandled
                    # callback error), so skip the Event bookkeeping.
                    event.fn(*event.args)
                    continue
                had_waiters = bool(event.callbacks)
                event._process()
                if strict and not event._ok and not had_waiters:
                    # A failure nobody observed: surface it, don't lose it.
                    raise event._value
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        finally:
            self.events_processed += processed
            if sentinel is not None and queue:
                # Exited without consuming the horizon entry (exception
                # mid-run): pull it back out so a later run() call is not
                # stopped by a stale horizon.
                try:
                    queue.remove((stop_time, _HORIZON_SEQ, sentinel))
                    heapq.heapify(queue)
                except ValueError:  # pragma: no cover - defensive
                    pass
        if stop_time is not None:
            # Queue drained before the horizon: advance the clock anyway so
            # repeated run(until=...) calls observe monotonic time.
            self._now = stop_time
        if isinstance(until, Event) and not until.processed:
            raise SimulationError("run(until=event): schedule drained first")
        return None

    @staticmethod
    def _noop() -> None:  # pragma: no cover - horizon sentinel body
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        raise StopSimulation(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now}ns queued={len(self._queue)}>"
