"""The Network Cache: NIC-resident memory replicated at every node.

Slide 2: "Use Network Cache to keep the same information at every node...
the management information is ubiquitous... applications can use the
network to rebuild."  Slide 11 puts 2-16 MB of SRAM (or up to 256 MB of
SDRAM) of it on every NIC.

This module is the *local replica*: typed regions of fixed-size records,
each record guarded by the two "Lamport counters" of slide 9 (what the
modern world calls a seqlock).  Replication — broadcasting writes and
applying peers' updates — lives in :mod:`repro.cache.replication`.

Torn reads are real here: a peer's update is applied *gradually* (the DMA
engine writes the record a few bytes per cycle), and a naive reader that
ignores the counters can observe half-old-half-new bytes.  The slide-9
read protocol makes that impossible:

    To read:  read first counter, read last counter;
              if they agree, read data, else wait and restart;
              re-read first counter, if changed restart.
    To write: just write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Optional, Tuple

from ..sim import Counter, Simulator

__all__ = [
    "RegionSpec",
    "RecordUpdate",
    "NetworkCache",
    "CacheError",
    "encode_update",
    "decode_update",
]


class CacheError(Exception):
    """Bad region/record addressing or malformed update."""


@dataclass(frozen=True)
class RegionSpec:
    """Shape of one cache region (identical at every node)."""

    region_id: int
    name: str
    n_records: int
    record_size: int

    def __post_init__(self) -> None:
        if not 0 <= self.region_id <= 0xFF:
            raise CacheError("region id out of byte range")
        if self.n_records < 1 or self.record_size < 1:
            raise CacheError("region must hold at least one byte")
        if self.record_size > 0xFFFF:
            raise CacheError("record size out of u16 range")

    @property
    def size_bytes(self) -> int:
        return self.n_records * self.record_size


@dataclass(frozen=True)
class RecordUpdate:
    """One record write as shipped between replicas."""

    region_id: int
    index: int
    version: int
    writer: int
    data: bytes


def encode_update(u: RecordUpdate) -> bytes:
    """Wire form: region(1) index(2) version(4) writer(1) len(2) data."""
    return (
        bytes([u.region_id])
        + u.index.to_bytes(2, "little")
        + (u.version & 0xFFFFFFFF).to_bytes(4, "little")
        + bytes([u.writer])
        + len(u.data).to_bytes(2, "little")
        + u.data
    )


def decode_update(raw: bytes) -> Tuple[RecordUpdate, bytes]:
    """Parse one update from ``raw``; returns (update, remaining bytes)."""
    if len(raw) < 10:
        raise CacheError("truncated record update")
    region_id = raw[0]
    index = int.from_bytes(raw[1:3], "little")
    version = int.from_bytes(raw[3:7], "little")
    writer = raw[7]
    length = int.from_bytes(raw[8:10], "little")
    if len(raw) < 10 + length:
        raise CacheError("record update data truncated")
    data = raw[10 : 10 + length]
    return RecordUpdate(region_id, index, version, writer, data), raw[10 + length :]


class _Record:
    """One record replica: data plus the two guard counters."""

    __slots__ = ("c1", "c2", "data", "writer")

    def __init__(self, size: int):
        self.c1 = 0
        self.c2 = 0
        self.data = bytearray(size)
        self.writer = 0

    @property
    def stable(self) -> bool:
        return self.c1 == self.c2


class NetworkCache:
    """One node's replica of the network cache."""

    #: Bytes the NIC DMA engine writes per apply step.
    APPLY_CHUNK = 16
    #: Nanoseconds per apply step (SRAM write burst).
    APPLY_STEP_NS = 40
    #: Reader retry backoff when a record is mid-update.
    RETRY_NS = 100

    def __init__(self, sim: Simulator, node_id: int):
        self.sim = sim
        self.node_id = node_id
        self.counters = Counter()
        self._regions: Dict[int, RegionSpec] = {}
        self._by_name: Dict[str, RegionSpec] = {}
        self._records: Dict[int, List[_Record]] = {}
        #: replication hook: called with each local RecordUpdate
        self.on_local_write: Optional[Callable[[RecordUpdate], None]] = None
        #: hook: called after a region is defined locally
        self.on_region_defined: Optional[Callable[[RegionSpec], None]] = None

    # -------------------------------------------------------------- regions
    def define_region(self, spec: RegionSpec, announce: bool = True) -> None:
        """Create a region locally (replication announces it to peers)."""
        existing = self._regions.get(spec.region_id)
        if existing is not None:
            if existing != spec:
                raise CacheError(
                    f"region id {spec.region_id} redefined with a different shape"
                )
            return
        if spec.name in self._by_name:
            raise CacheError(f"region name {spec.name!r} already in use")
        self._regions[spec.region_id] = spec
        self._by_name[spec.name] = spec
        self._records[spec.region_id] = [
            _Record(spec.record_size) for _ in range(spec.n_records)
        ]
        if announce and self.on_region_defined is not None:
            self.on_region_defined(spec)

    def region(self, name: str) -> RegionSpec:
        spec = self._by_name.get(name)
        if spec is None:
            raise CacheError(f"unknown region {name!r}")
        return spec

    def has_region(self, name: str) -> bool:
        return name in self._by_name

    def has_region_id(self, region_id: int) -> bool:
        return region_id in self._regions

    def regions(self) -> List[RegionSpec]:
        return sorted(self._regions.values(), key=lambda s: s.region_id)

    @property
    def size_bytes(self) -> int:
        return sum(s.size_bytes for s in self._regions.values())

    def _record(self, region_id: int, index: int) -> _Record:
        records = self._records.get(region_id)
        if records is None:
            raise CacheError(f"unknown region id {region_id}")
        if not 0 <= index < len(records):
            raise CacheError(f"record index {index} out of range")
        return records[index]

    # ---------------------------------------------------------------- write
    def write(self, region_name: str, index: int, data: bytes) -> RecordUpdate:
        """Local write ("just write", slide 9): seqlock-guarded, then
        handed to replication."""
        spec = self.region(region_name)
        rec = self._record(spec.region_id, index)
        if len(data) > spec.record_size:
            raise CacheError(
                f"data ({len(data)}B) exceeds record size {spec.record_size}"
            )
        version = max(rec.c1, rec.c2) + 1
        rec.c1 = version
        padded = bytes(data).ljust(spec.record_size, b"\x00")
        rec.data[:] = padded
        rec.writer = self.node_id
        rec.c2 = version
        self.counters.incr("local_writes")
        update = RecordUpdate(spec.region_id, index, version, self.node_id, padded)
        if self.on_local_write is not None:
            self.on_local_write(update)
        return update

    # ----------------------------------------------------------------- read
    def read_naive(self, region_name: str, index: int) -> bytes:
        """Read ignoring the counters — may return torn data (ablation)."""
        spec = self.region(region_name)
        rec = self._record(spec.region_id, index)
        self.counters.incr("naive_reads")
        return bytes(rec.data)

    def try_read(self, region_name: str, index: int) -> Tuple[bool, bytes, int]:
        """One seqlock attempt: (stable?, data, version)."""
        spec = self.region(region_name)
        rec = self._record(spec.region_id, index)
        first = rec.c1
        last = rec.c2
        if first != last:
            return False, b"", 0
        data = bytes(rec.data)
        if rec.c1 != first:
            return False, b"", 0
        return True, data, first

    def read(
        self, region_name: str, index: int
    ) -> Generator:
        """Slide-9 read protocol as a simulation process.

        Yield from this inside a process::

            data = yield from cache.read("config", 3)
        """
        while True:
            ok, data, _version = self.try_read(region_name, index)
            if ok:
                self.counters.incr("reads")
                return data
            self.counters.incr("read_retries")
            yield self.sim.timeout(self.RETRY_NS)

    def version_of(self, region_name: str, index: int) -> Tuple[int, int]:
        """(version, writer) of a record — stable reads only in tests."""
        spec = self.region(region_name)
        rec = self._record(spec.region_id, index)
        return max(rec.c1, rec.c2), rec.writer

    # ---------------------------------------------------------------- apply
    def should_apply(self, update: RecordUpdate) -> bool:
        """Last-writer-wins ordering on (version, writer id)."""
        rec = self._record(update.region_id, update.index)
        current = (max(rec.c1, rec.c2), rec.writer)
        incoming = (update.version, update.writer)
        return incoming > current

    def apply_update(self, update: RecordUpdate) -> Generator:
        """Apply a peer's write the way the DMA engine does: first
        counter, data in bursts, last counter.  Run as a process."""
        if not self.should_apply(update):
            self.counters.incr("stale_updates")
            return False
        rec = self._record(update.region_id, update.index)
        spec = self._regions[update.region_id]
        rec.c1 = update.version
        rec.writer = update.writer
        padded = update.data.ljust(spec.record_size, b"\x00")
        for off in range(0, spec.record_size, self.APPLY_CHUNK):
            if rec.c1 != update.version:
                # A newer local write overtook this apply mid-flight; its
                # data must not be damaged by our remaining bursts.
                self.counters.incr("overtaken_applies")
                return False
            rec.data[off : off + self.APPLY_CHUNK] = padded[
                off : off + self.APPLY_CHUNK
            ]
            yield self.sim.timeout(self.APPLY_STEP_NS)
        if rec.c1 == update.version:
            rec.c2 = update.version
            self.counters.incr("applied_updates")
            return True
        self.counters.incr("overtaken_applies")
        return False

    def apply_update_atomic(self, update: RecordUpdate) -> bool:
        """Instant apply (used by snapshot refresh, where the receiving
        node is not yet serving readers)."""
        if not self.should_apply(update):
            self.counters.incr("stale_updates")
            return False
        rec = self._record(update.region_id, update.index)
        spec = self._regions[update.region_id]
        rec.c1 = update.version
        rec.writer = update.writer
        rec.data[:] = update.data.ljust(spec.record_size, b"\x00")
        rec.c2 = update.version
        self.counters.incr("applied_updates")
        return True

    # ------------------------------------------------------------- snapshot
    def snapshot(self) -> bytes:
        """Serialize every region spec and record (assimilation refresh)."""
        parts: List[bytes] = []
        specs = self.regions()
        parts.append(len(specs).to_bytes(2, "little"))
        for spec in specs:
            name_b = spec.name.encode("utf-8")
            parts.append(
                bytes([spec.region_id, len(name_b)])
                + name_b
                + spec.n_records.to_bytes(4, "little")
                + spec.record_size.to_bytes(2, "little")
            )
        for spec in specs:
            for idx in range(spec.n_records):
                rec = self._record(spec.region_id, idx)
                version = max(rec.c1, rec.c2)
                if version == 0:
                    continue  # never written; skip for compactness
                parts.append(
                    encode_update(
                        RecordUpdate(
                            spec.region_id, idx, version, rec.writer, bytes(rec.data)
                        )
                    )
                )
        return b"".join(parts)

    def apply_snapshot(self, raw: bytes) -> int:
        """Install a snapshot; returns the number of records applied."""
        if len(raw) < 2:
            raise CacheError("truncated snapshot")
        n_specs = int.from_bytes(raw[:2], "little")
        cursor = raw[2:]
        for _ in range(n_specs):
            if len(cursor) < 2:
                raise CacheError("truncated snapshot region table")
            region_id, name_len = cursor[0], cursor[1]
            name = cursor[2 : 2 + name_len].decode("utf-8")
            rest = cursor[2 + name_len :]
            n_records = int.from_bytes(rest[:4], "little")
            record_size = int.from_bytes(rest[4:6], "little")
            self.define_region(
                RegionSpec(region_id, name, n_records, record_size), announce=False
            )
            cursor = rest[6:]
        applied = 0
        while cursor:
            update, cursor = decode_update(cursor)
            if self.apply_update_atomic(update):
                applied += 1
        self.counters.incr("snapshots_applied")
        return applied
