"""Push-gossip membership with a SWIM-style failure detector.

Each :class:`~repro.node.AmpNode` runs one :class:`GossipProtocol`
instance on top of its reliable :class:`~repro.transport.Messenger`.
Every protocol period the node:

1. advances its own heartbeat sequence number (monotonic within an
   incarnation),
2. runs the local failure detector — peers whose heartbeat has not
   advanced within the staleness window become **SUSPECT**; suspects
   that outlive the suspicion window become **DEAD**,
3. direct-probes one peer (SWIM round-robin over a shuffled cycle) with
   a PING interrupt cell; a missing ACK raises suspicion immediately
   instead of waiting for staleness,
4. pushes its full digest to ``fanout`` gossip partners chosen from its
   seeded random stream.

Dissemination is epidemic: a verdict reaches all N nodes in O(log N)
periods with no coordinator — exactly the property the centralized
roster cannot offer under heavy churn.  Suspicion follows the SWIM
refutation rule: a node that sees *itself* suspected or declared dead
bumps its **incarnation number**, which supersedes every claim about the
previous incarnation (see :mod:`repro.membership.state` for the merge
semilattice).

Determinism: all randomness (first-tick jitter, probe cycle shuffles,
partner choice) is drawn from the simulator stream
``membership-<node_id>``, so two runs with the same master seed produce
identical gossip timelines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..micropacket import VARIABLE_PAYLOAD_MAX
from ..sim import Counter
from ..transport import Channel
from .state import PeerState, PeerStatus, PeerView
from .wire import ACK, PING, decode_digest, decode_probe, encode_digest, encode_probe

if TYPE_CHECKING:  # pragma: no cover
    from ..node import AmpNode

__all__ = ["MembershipConfig", "GossipProtocol"]


@dataclass
class MembershipConfig:
    """Gossip and failure-detector tuning.

    All ``*_ns`` fields left at ``None`` are resolved from the protocol
    period at attach time; the cluster in turn defaults the period to a
    few ring-tour estimates so the same config scales from machine-room
    to campus fibre.
    """

    #: Protocol period; None = let the cluster derive it from the
    #: ring-tour estimate (a handful of tours).
    period_ns: Optional[int] = None
    #: Gossip partners contacted per period (epidemic fan-out).
    fanout: int = 2
    #: Direct-probe ACK deadline; None = half a period.
    ping_timeout_ns: Optional[int] = None
    #: ALIVE -> SUSPECT when the heartbeat stalls this long; None = 4 periods.
    stale_after_ns: Optional[int] = None
    #: SUSPECT -> DEAD after this unrefuted window; None = 3 periods.
    suspicion_window_ns: Optional[int] = None
    #: Desynchronize first ticks with seeded jitter (keep True; False
    #: makes every node gossip in lockstep, useful only in unit tests).
    jitter: bool = True

    def resolved_for(
        self, n_nodes: int, tour_estimate_ns: int
    ) -> "MembershipConfig":
        """A copy with every None field sized for a real cluster.

        Two capacity facts drive the defaults:

        * The digest is O(N) bytes, and every fragment of every gossip
          message tours the *entire shared ring* — so the protocol
          period must grow with the per-period frame load
          (``fanout * fragments + probe traffic`` tours, doubled for
          headroom) or the ring saturates and heartbeats arrive late,
          which reads exactly like mass death.
        * A fresh heartbeat needs O(log N) periods to infect everyone,
          so the staleness window must stay above the dissemination
          latency or large clusters false-suspect in steady state.
        """
        from .wire import ENTRY_BYTES

        fragments = max(1, math.ceil(n_nodes * ENTRY_BYTES / VARIABLE_PAYLOAD_MAX))
        frames_per_period = self.fanout * fragments + 4
        # 4x margin: variable-format digest frames serialize ~3x slower
        # than the fixed cells the tour estimate is built from, and the
        # post-fault retransmit burst needs slack to drain without
        # starving the kernel's priority heartbeat cells.
        period = self.period_ns or max(
            4 * frames_per_period * tour_estimate_ns, 50_000
        )
        stale_periods = max(4, 2 + math.ceil(math.log2(max(n_nodes, 2))))
        return replace(
            self,
            period_ns=period,
            ping_timeout_ns=self.ping_timeout_ns or max(period // 2, 1),
            stale_after_ns=self.stale_after_ns or stale_periods * period,
            suspicion_window_ns=self.suspicion_window_ns or 3 * period,
        )


class GossipProtocol:
    """Per-node membership endpoint (attach via cluster ``membership=True``)."""

    def __init__(self, node: "AmpNode", config: MembershipConfig):
        if config.period_ns is None:
            raise ValueError("config must be resolved (MembershipConfig.resolved_for)")
        self.node = node
        self.sim = node.sim
        self.config = config
        self.name = f"member-{node.node_id}"
        self.counters = Counter()
        self.rng = self.sim.rng.stream(f"membership-{node.node_id}")

        self.incarnation = 0
        self.heartbeat = 0
        self.view = PeerView(node.node_id)
        self._running = False
        #: bumped on crash/recover so stale timer callbacks self-cancel
        self._generation = 0
        self._probe_cycle: List[int] = []
        self._next_nonce = 0
        #: nonce -> (target, sent_at) for in-flight direct probes
        self._outstanding: Dict[int, tuple] = {}
        #: when the ring last (re)installed — detector timers must not
        #: count ring-down time, or any outage longer than the staleness
        #: window mass-suspects the whole (perfectly alive) cluster
        self._last_ring_up = 0

        #: observers of every recorded status transition (PeerState).
        #: The segment-routing layer taps this on gateway nodes to audit
        #: gossip verdicts crossing the router; the liveness a router
        #: *advertises* is read from this node's view at advertisement
        #: time (see :mod:`repro.routing`).
        self.transition_listeners: List[Callable[[PeerState], None]] = []

        self._channel = Channel.MEMBERSHIP
        node.messenger.on_message(self._channel, self._on_digest)
        node.messenger.on_signal(self._channel, self._on_probe)
        node.ring_up_listeners.append(self._on_ring_up)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Begin gossiping (idempotent; cluster calls this after boot)."""
        if self._running:
            return
        self._running = True
        self._install_self()
        gen = self._generation
        delay = self.rng.randrange(self.config.period_ns) if self.config.jitter else 0
        self.sim.call_in(self.node.config.boot_delay_ns + delay, lambda: self._tick(gen))

    def crash(self) -> None:
        """Node power loss: NIC membership table is gone."""
        self._running = False
        self._generation += 1
        self.view = PeerView(self.node.node_id)
        self._probe_cycle = []
        self._outstanding = {}

    def recover(self) -> None:
        """Power back on under a fresh incarnation (supersedes tombstones)."""
        self.incarnation += 1
        self.heartbeat = 0
        self._running = False  # start() below re-arms
        self.start()

    def _install_self(self) -> None:
        self.view.override(
            PeerState(self.node.node_id, self.incarnation, self.heartbeat), self.sim.now
        )

    # ------------------------------------------------------------- queries
    def considers_live(self, node_id: int) -> bool:
        """The verdict the roster layer consumes (only DEAD disqualifies)."""
        return self.view.considers_live(node_id)

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------ protocol
    def _tick(self, gen: int) -> None:
        if gen != self._generation or not self._running or self.node.failed:
            return
        now = self.sim.now
        if self.node.ring_up:
            self.heartbeat += 1
            self._install_self()
            self._detector_sweep(now)
            self._probe_one(now)
            self._push_gossip()
        self.sim.call_in(self.config.period_ns, lambda: self._tick(gen))

    # ----------------------------------------------------------- detection
    def _detector_sweep(self, now: int) -> None:
        for peer_id in list(self.view.states):
            if peer_id == self.node.node_id:
                continue
            state = self.view.states[peer_id]
            if state.status == PeerStatus.ALIVE:
                seen = max(
                    self.view.heartbeat_seen_at.get(peer_id, now),
                    self._last_ring_up,
                )
                if now - seen >= self.config.stale_after_ns:
                    self._suspect(peer_id, "heartbeat stale")
            elif state.status == PeerStatus.SUSPECT:
                since = max(
                    self.view.status_since.get(peer_id, now),
                    self._last_ring_up,
                )
                if now - since >= self.config.suspicion_window_ns:
                    self._declare_dead(peer_id)

    def _suspect(self, peer_id: int, why: str) -> None:
        raised = self.view.suspect(peer_id, self.sim.now)
        if raised is None:
            return
        self.counters.incr("suspicions")
        self._record_transition(raised, why=why)

    def _declare_dead(self, peer_id: int) -> None:
        dead = self.view.declare_dead(peer_id, self.sim.now)
        if dead is None:
            return
        self.counters.incr("deaths")
        self._record_transition(dead, why="suspicion expired")

    def _probe_one(self, now: int) -> None:
        target = self._next_probe_target()
        if target is None:
            return
        nonce = self._next_nonce = (self._next_nonce + 1) % 0x10000
        self._outstanding[nonce] = (target, now)
        self.node.messenger.signal(
            target,
            encode_probe(PING, self.node.node_id, nonce, self.heartbeat),
            self._channel,
        )
        self.counters.incr("pings_tx")
        gen = self._generation
        self.sim.call_in(self.config.ping_timeout_ns, lambda: self._ack_deadline(gen, nonce))

    def _ack_deadline(self, gen: int, nonce: int) -> None:
        if gen != self._generation or not self._running:
            return
        entry = self._outstanding.pop(nonce, None)
        if entry is None:
            return  # acked in time
        target, sent_at = entry
        if not self.node.ring_up or sent_at < self._last_ring_up:
            return  # the ring dropped mid-probe: the silence proves nothing
        self.counters.incr("ping_timeouts")
        self._suspect(target, "ping timeout")

    def _next_probe_target(self) -> Optional[int]:
        """SWIM round-robin: shuffle the membership, probe it exhaustively."""
        candidates = {
            n for n, s in self.view.states.items()
            if n != self.node.node_id and s.status != PeerStatus.DEAD
        }
        while True:
            while self._probe_cycle:
                peer = self._probe_cycle.pop()
                if peer in candidates:
                    return peer
            if not candidates:
                return None
            cycle = sorted(candidates)
            self.rng.shuffle(cycle)
            self._probe_cycle = cycle

    # -------------------------------------------------------- dissemination
    def _push_gossip(self) -> None:
        candidates = [
            n for n, s in sorted(self.view.states.items())
            if n != self.node.node_id and s.status != PeerStatus.DEAD
        ]
        if not candidates:
            # Never go silent: with every peer tombstoned, a false mass
            # verdict (e.g. after a long partition) could otherwise never
            # be refuted because no digest would ever leave this node.
            candidates = [n for n in sorted(self.view.states) if n != self.node.node_id]
        if not candidates:
            return
        k = min(self.config.fanout, len(candidates))
        partners = self.rng.sample(candidates, k)
        payload = encode_digest(self.view.digest())
        for partner in partners:
            self.node.messenger.send(partner, payload, self._channel)
        self.counters.incr("gossip_tx", len(partners))
        self.counters.incr("gossip_bytes_tx", len(payload) * len(partners))

    def _on_digest(self, src: int, payload: bytes, channel: int) -> None:
        if not self._running or self.node.failed:
            return
        self.counters.incr("gossip_rx")
        now = self.sim.now
        for state in decode_digest(payload):
            if state.node_id == self.node.node_id:
                self._maybe_refute(state)
                continue
            known = state.node_id in self.view.states
            change = self.view.apply(state, now)
            if not known:
                self.counters.incr("peers_discovered")
            if change is not None:
                old, new = change
                if old is None or old.status != new.status or old.incarnation != new.incarnation:
                    self._record_transition(new, why=f"gossip from {src}")
        # Anti-entropy reply: a digest from a peer we have tombstoned
        # proves that peer is reachable again (two healed partitions
        # bury *each other*, so neither camp ever picks the other as a
        # gossip partner and the ring-up burst may predate refutations).
        # Answering with our digest hands the sender our accusation to
        # refute — and our camp's state to merge — so the epidemic jumps
        # the camp boundary.  Bounded: one reply per received digest,
        # and only while the sender stays buried in our view.
        if not self.view.considers_live(src):
            self.node.messenger.send(
                src, encode_digest(self.view.digest()), self._channel
            )
            self.counters.incr("reconcile_reply_tx")

    def _maybe_refute(self, claim: PeerState) -> None:
        """SWIM refutation: nobody gets to bury me while I can still talk."""
        if claim.status == PeerStatus.ALIVE or claim.incarnation < self.incarnation:
            return
        self.incarnation = claim.incarnation + 1
        self.heartbeat += 1
        self._install_self()
        self.counters.incr("refutations")
        self.node.tracer.record(
            self.sim.now, "membership", self.name,
            peer=self.node.node_id, status="ALIVE",
            incarnation=self.incarnation, heartbeat=self.heartbeat,
            why="refutation",
        )

    def _on_probe(self, src: int, payload: bytes) -> None:
        if not self._running or self.node.failed:
            return
        op, origin, nonce, _heartbeat = decode_probe(payload)
        if op == PING:
            self.counters.incr("pings_rx")
            # Answering proves *we* are alive; seeing the ping proves the
            # pinger is.  Both only refresh local freshness clocks — a
            # probe carries no incarnation, so it never enters the merge.
            self.view.heartbeat_seen_at[origin] = self.sim.now
            self.node.messenger.signal(
                origin,
                encode_probe(ACK, self.node.node_id, nonce, self.heartbeat),
                self._channel,
            )
            self.counters.incr("acks_tx")
        elif op == ACK:
            self.counters.incr("acks_rx")
            if self._outstanding.pop(nonce, None) is not None:
                self.view.heartbeat_seen_at[origin] = self.sim.now

    # ----------------------------------------------------------- discovery
    def _on_ring_up(self, roster) -> None:
        """Seed unknown roster members as incarnation-0 ALIVE entries.

        Real claims (higher heartbeat / incarnation) merge over these; a
        tombstoned peer stays dead until its own refreshed incarnation
        arrives, so this never resurrects anyone.
        """
        if not self._running or self.node.failed:
            return
        self._last_ring_up = self.sim.now
        for member in roster.members:
            if member != self.node.node_id and member not in self.view.states:
                self.view.apply(PeerState(member, 0, 0), self.sim.now)
                self.counters.incr("peers_discovered")
        # Anti-entropy on reunification: a roster member our view has
        # tombstoned is provably back (it just rostered) — but normal
        # gossip skips DEAD peers, so the tombstone would never reach it
        # for refutation.  Tell it directly what we believe; its bumped
        # incarnation then overrides the tombstone everywhere.
        buried = [
            m for m in roster.members
            if m != self.node.node_id and not self.view.considers_live(m)
        ]
        if buried:
            payload = encode_digest(self.view.digest())
            for member in buried:
                self.node.messenger.send(member, payload, self._channel)
            self.counters.incr("reconcile_tx", len(buried))

    # ------------------------------------------------------------- tracing
    def _record_transition(self, state: PeerState, why: str) -> None:
        self.node.tracer.record(
            self.sim.now, "membership", self.name,
            peer=state.node_id, status=state.status.name,
            incarnation=state.incarnation, heartbeat=state.heartbeat,
            why=why,
        )
        for listener in self.transition_listeners:
            listener(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GossipProtocol {self.name} inc={self.incarnation} "
            f"hb={self.heartbeat} peers={len(self.view.states)}>"
        )
