"""Integer-exact token bucket for router ingress throttling.

The bucket is kept in *token-nanoseconds*: the fill level is an integer
number of nanoseconds of accumulated credit, one admitted fragment
costs ``token_ns`` of it, and the level refills linearly with simulated
time up to ``burst * token_ns``.  Working in ns keeps every operation
exact integer arithmetic — no float drift, so two same-seed runs make
bit-identical admit/defer decisions, which the scenario replay digests
depend on.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """Deterministic token bucket (integer token-ns accounting)."""

    def __init__(self, token_ns: int, burst: int, now: int = 0):
        if token_ns < 1:
            raise ValueError("token interval must be >= 1 ns")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.token_ns = token_ns
        self.cap_ns = burst * token_ns
        #: start full: the first burst after quiet is always admitted
        self.level_ns = self.cap_ns
        self._stamp = now

    def _refill(self, now: int) -> None:
        if now > self._stamp:
            self.level_ns = min(self.cap_ns,
                                self.level_ns + (now - self._stamp))
            self._stamp = now

    def try_take(self, now: int) -> bool:
        """Spend one token if available."""
        self._refill(now)
        if self.level_ns >= self.token_ns:
            self.level_ns -= self.token_ns
            return True
        return False

    def delay_until_ready(self, now: int) -> int:
        """Nanoseconds until one token is available (0 = ready now)."""
        self._refill(now)
        return max(0, self.token_ns - self.level_ns)

    @property
    def tokens(self) -> int:
        """Whole tokens currently available (observability)."""
        return self.level_ns // self.token_ns

    def reset(self, now: int) -> None:
        """Cold restart: full bucket, clock re-anchored."""
        self.level_ns = self.cap_ns
        self._stamp = now
