"""AmpDK: the distributed kernel (heartbeats, certification, assimilation,
control groups) — slides 17-19."""

from .ampdk import AmpDK, AmpDKConfig, CERTIFY_CHANNEL, HEARTBEAT_CHANNEL
from .assimilation import AssimilationPolicy, AssimilationTracker
from .control_group import ControlGroup, ControlGroupConfig, GroupApp

__all__ = [
    "AmpDK",
    "AmpDKConfig",
    "AssimilationPolicy",
    "AssimilationTracker",
    "CERTIFY_CHANNEL",
    "ControlGroup",
    "ControlGroupConfig",
    "GroupApp",
    "HEARTBEAT_CHANNEL",
]
