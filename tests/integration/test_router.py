"""Integration: the slide-15 router joining two redundant segments."""

import pytest

from repro import AmpNetCluster, ClusterConfig
from repro.services import InterSegmentRouter
from repro.sim import Simulator


def routed_network():
    """A dual-redundant and a quad-redundant segment joined by a router,
    exactly the slide-15 picture."""
    sim = Simulator(seed=1)
    dual = AmpNetCluster(config=ClusterConfig(n_nodes=4, n_switches=2), sim=sim)
    quad = AmpNetCluster(config=ClusterConfig(n_nodes=6, n_switches=4), sim=sim)
    dual.start()
    quad.start()
    dual.run_until_ring_up()
    quad.run_until_ring_up()
    router = InterSegmentRouter({0: (dual, 3), 1: (quad, 0)})
    return sim, dual, quad, router


def settle(cluster, tours=80):
    cluster.run(until=cluster.sim.now + tours * cluster.tour_estimate_ns)


def test_two_segments_run_independent_rings():
    _sim, dual, quad, _router = routed_network()
    assert dual.current_roster().size == 4
    assert quad.current_roster().size == 6
    # Independent rostering domains: their rounds need not agree.
    assert dual.current_roster() is not quad.current_roster()


def test_local_segment_traffic_stays_local():
    _sim, dual, quad, router = routed_network()
    got = []
    router.endpoint(0, 2).on_receive = lambda src, data: got.append((src, data))
    router.endpoint(0, 0).send((0, 2), b"intra-segment")
    settle(dual)
    assert got == [((0, 0), b"intra-segment")]
    assert router.counters["crossed"] == 0


def test_cross_segment_delivery():
    _sim, dual, quad, router = routed_network()
    got = []
    router.endpoint(1, 5).on_receive = lambda src, data: got.append((src, data))
    router.endpoint(0, 1).send((1, 5), b"across the router")
    settle(quad, tours=200)
    assert got == [((0, 1), b"across the router")]
    assert router.counters["crossed"] == 1


def test_cross_segment_reply_path():
    _sim, dual, quad, router = routed_network()
    transcript = []

    ep_a = router.endpoint(0, 0)
    ep_b = router.endpoint(1, 4)

    def serve(src, data):
        transcript.append(("request", src, data))
        ep_b.send(src, b"pong")

    ep_b.on_receive = serve
    ep_a.on_receive = lambda src, data: transcript.append(("reply", src, data))
    ep_a.send((1, 4), b"ping")
    settle(quad, tours=400)
    assert transcript == [
        ("request", (0, 0), b"ping"),
        ("reply", (1, 4), b"pong"),
    ]


def test_gateway_addressable_both_ways():
    _sim, dual, quad, router = routed_network()
    got = []
    router.endpoint(1, 0).on_receive = lambda src, data: got.append(data)
    router.endpoint(0, 3).send((1, 0), b"gw to gw")  # gateway -> gateway
    settle(quad, tours=200)
    assert got == [b"gw to gw"]


def test_cross_segment_survives_ring_failure_in_transit_segment():
    sim, dual, quad, router = routed_network()
    got = []
    router.endpoint(1, 3).on_receive = lambda src, data: got.append(data)
    # Break the quad segment's ring just before sending.
    roster = quad.current_roster()
    quad.cut_link(2, roster.hop_switch_from(2))
    router.endpoint(0, 2).send((1, 3), b"through the storm")
    quad.run_until_reroster()
    settle(quad, tours=400)
    assert got == [b"through the storm"]


def test_router_validation():
    sim = Simulator()
    c = AmpNetCluster(config=ClusterConfig(n_nodes=2, n_switches=1), sim=sim)
    with pytest.raises(ValueError):
        InterSegmentRouter({0: (c, 0)})
    other = AmpNetCluster(config=ClusterConfig(n_nodes=2, n_switches=1))
    with pytest.raises(ValueError):
        InterSegmentRouter({0: (c, 0), 1: (other, 0)})  # different sims


def test_endpoint_validation():
    _sim, dual, _quad, router = routed_network()
    with pytest.raises(ValueError):
        router.endpoint(9, 0)
    with pytest.raises(ValueError):
        router.endpoint(0, 99)
