"""AmpIP: the IP-datagram personality of the AmpNet driver (slides 11-12).

The paper's stack runs an ordinary IP stack over the AmpNet NIC ("AmpIP
driver"); sockets and MPI/PVM sit on top.  We model the part that
matters for the experiments: an unreliable datagram service with IP-like
addressing mapped onto ring node ids, plus a tiny socket-flavoured
wrapper.  Datagrams ride the same MicroPacket machinery but — true to
UDP semantics — the service does not retransmit: if the ring is down
when a datagram is posted, it is dropped and counted, which is exactly
the contrast the network-cache services are designed to win against.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple, TYPE_CHECKING

from ..micropacket import BROADCAST
from ..sim import Counter, Event
from ..transport import Channel

if TYPE_CHECKING:  # pragma: no cover
    from ..node import AmpNode

__all__ = ["AmpIP", "DatagramSocket"]


class AmpIP:
    """Datagram endpoint: node ids as addresses, 16-bit ports."""

    def __init__(self, node: "AmpNode"):
        self.node = node
        self.counters = Counter()
        self._sockets: Dict[int, "DatagramSocket"] = {}
        node.messenger.on_message(Channel.GENERAL, self._on_message)

    def socket(self, port: int) -> "DatagramSocket":
        if not 0 <= port <= 0xFFFF:
            raise ValueError("port out of range")
        if port in self._sockets:
            raise ValueError(f"port {port} already bound")
        sock = DatagramSocket(self, port)
        self._sockets[port] = sock
        return sock

    def _close(self, port: int) -> None:
        self._sockets.pop(port, None)

    def send_datagram(
        self, dst: int, dst_port: int, payload: bytes, src_port: int = 0
    ) -> bool:
        """Fire-and-forget datagram; False if the ring is down right now."""
        if not self.node.ring_up:
            self.counters.incr("dropped_ring_down")
            return False
        header = dst_port.to_bytes(2, "little") + src_port.to_bytes(2, "little")
        self.node.messenger.send(dst, header + payload, Channel.GENERAL)
        self.counters.incr("datagrams_sent")
        return True

    def _on_message(self, src: int, raw: bytes, channel: int) -> None:
        dst_port = int.from_bytes(raw[:2], "little")
        src_port = int.from_bytes(raw[2:4], "little")
        payload = raw[4:]
        sock = self._sockets.get(dst_port)
        if sock is None:
            self.counters.incr("no_socket_drop")
            return
        self.counters.incr("datagrams_received")
        sock._deliver((src, src_port), payload)


class DatagramSocket:
    """A bound port with blocking receive."""

    def __init__(self, ip: AmpIP, port: int):
        self.ip = ip
        self.port = port
        self._queue: Deque[Tuple[int, bytes]] = deque()
        self._waiters: Deque[Event] = deque()
        self.closed = False

    def sendto(self, dst: int, dst_port: int, payload: bytes) -> bool:
        """Send to (node ``dst``, port ``dst_port``), like UDP sendto."""
        if self.closed:
            raise ValueError("socket closed")
        return self.ip.send_datagram(dst, dst_port, payload, src_port=self.port)

    def broadcast(self, dst_port: int, payload: bytes) -> bool:
        return self.sendto(BROADCAST, dst_port, payload)

    def recvfrom(self):
        """Process: returns ((src_node, src_port), payload)."""
        while True:
            if self._queue:
                return self._queue.popleft()
            ev = self.ip.node.sim.event()
            self._waiters.append(ev)
            yield ev

    def _deliver(self, addr: Tuple[int, int], payload: bytes) -> None:
        self._queue.append((addr, payload))
        if self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        self.closed = True
        self.ip._close(self.port)
